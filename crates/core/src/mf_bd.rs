//! Algorithm 2: the matrix-free BD algorithm.
//!
//! Every `lambda_RPY` steps: build a fresh [`PmeOperator`] for the current
//! configuration and draw the whole block of `lambda_RPY` Brownian
//! displacement vectors with block Lanczos (`D = Krylov(PME, Z)`). In
//! between, each step evaluates the deterministic forces and propagates
//! `r += PME(f) dt + d_j` — never materializing the mobility matrix.

use crate::ewald_bd::BdError;
use crate::forces::{total_force, Force};
use crate::system::ParticleSystem;
use hibd_krylov::{
    block_lanczos_sqrt, chebyshev_sqrt, lanczos_sqrt, ChebyshevConfig, KrylovConfig,
};
use hibd_linalg::LinearOperator;
use hibd_mathx::fill_standard_normal;
use hibd_pme::{tune, PmeOperator, PmeParams, PmePhaseTimes};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// How the block of Brownian displacement vectors is computed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DisplacementMode {
    /// Block Lanczos over all `lambda_RPY` vectors at once (Algorithm 2;
    /// fewer iterations per vector, multi-RHS real-space SpMM).
    #[default]
    BlockKrylov,
    /// One single-vector Lanczos solve per displacement (the pre-block
    /// baseline of the paper's ref. [8]; kept for the ablation study).
    SingleKrylov,
    /// Fixman's Chebyshev polynomial method (the paper's ref. [25]):
    /// spectral bounds are estimated once per operator refresh, then one
    /// polynomial evaluation per displacement vector.
    Chebyshev,
}

/// Configuration of the matrix-free algorithm.
#[derive(Clone, Copy, Debug)]
pub struct MatrixFreeConfig {
    /// Time step `dt`.
    pub dt: f64,
    /// Thermal energy `kB T`.
    pub kbt: f64,
    /// Operator reuse interval (= Krylov block width).
    pub lambda_rpy: usize,
    /// Krylov convergence tolerance (the paper's `e_k`).
    pub e_k: f64,
    /// PME accuracy target (the paper's `e_p`) used when `pme` is `None`.
    pub target_ep: f64,
    /// Explicit PME parameters; `None` lets the tuner choose from the
    /// system's size and volume fraction.
    pub pme: Option<PmeParams>,
    /// Krylov iteration cap.
    pub max_krylov: usize,
    /// Displacement solver variant (block vs single-vector Lanczos).
    pub displacement_mode: DisplacementMode,
}

impl Default for MatrixFreeConfig {
    fn default() -> Self {
        MatrixFreeConfig {
            dt: 0.01,
            kbt: 1.0,
            lambda_rpy: 16,
            e_k: 1e-2,
            target_ep: 1e-3,
            pme: None,
            max_krylov: 100,
            displacement_mode: DisplacementMode::BlockKrylov,
        }
    }
}

/// Wall-clock accounting per phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct MfTimings {
    /// PME operator construction (line 4).
    pub setup: f64,
    /// Block Krylov displacement solve (lines 5-6).
    pub displacements: f64,
    /// Force evaluation + PME drift + propagation (lines 8-9).
    pub stepping: f64,
    /// Total Krylov iterations across displacement solves.
    pub krylov_iterations: usize,
    /// Steps taken.
    pub steps: usize,
}

impl MfTimings {
    pub fn total(&self) -> f64 {
        self.setup + self.displacements + self.stepping
    }

    pub fn per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.total() / self.steps as f64
        }
    }
}

/// The Algorithm 2 driver.
pub struct MatrixFreeBd {
    system: ParticleSystem,
    cfg: MatrixFreeConfig,
    params: PmeParams,
    forces: Vec<Box<dyn Force>>,
    rng: StdRng,
    op: Option<PmeOperator>,
    /// `3n x lambda` row-major block of pre-drawn displacements.
    disp: Vec<f64>,
    used: usize,
    /// Persistent per-step scratch: PME drift output and the combined
    /// displacement (each `3n`), so `step` allocates nothing.
    drift_scratch: Vec<f64>,
    step_scratch: Vec<f64>,
    timings: MfTimings,
}

impl MatrixFreeBd {
    /// Build the driver; PME parameters come from `cfg.pme` or the tuner.
    pub fn new(
        system: ParticleSystem,
        cfg: MatrixFreeConfig,
        seed: u64,
    ) -> Result<MatrixFreeBd, BdError> {
        assert!(cfg.lambda_rpy >= 1);
        let params = match cfg.pme {
            Some(p) => p,
            None => {
                tune(system.len(), system.volume_fraction(), system.a, system.eta, cfg.target_ep)
                    .params
            }
        };
        if (params.box_l - system.box_l).abs() > 1e-9 * system.box_l {
            return Err(BdError::Setup(format!(
                "PME box {} does not match system box {}",
                params.box_l, system.box_l
            )));
        }
        Ok(MatrixFreeBd {
            system,
            cfg,
            params,
            forces: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            op: None,
            disp: Vec::new(),
            used: usize::MAX,
            drift_scratch: Vec::new(),
            step_scratch: Vec::new(),
            timings: MfTimings::default(),
        })
    }

    pub fn add_force(&mut self, force: impl Force + 'static) {
        self.forces.push(Box::new(force));
    }

    /// Add an already-boxed force (useful when the concrete type is chosen
    /// at run time, e.g. from a config file).
    pub fn add_force_boxed(&mut self, force: Box<dyn Force>) {
        self.forces.push(force);
    }

    pub fn system(&self) -> &ParticleSystem {
        &self.system
    }

    pub fn config(&self) -> &MatrixFreeConfig {
        &self.cfg
    }

    /// PME parameters in effect.
    pub fn pme_params(&self) -> &PmeParams {
        &self.params
    }

    pub fn timings(&self) -> &MfTimings {
        &self.timings
    }

    /// Resident bytes of the current operator (0 before the first step).
    pub fn operator_memory_bytes(&self) -> usize {
        self.op.as_ref().map(|o| o.memory_bytes()).unwrap_or(0)
    }

    /// Per-phase PME timings accumulated so far (resets the counters).
    pub fn take_pme_times(&mut self) -> PmePhaseTimes {
        self.op.as_mut().map(|o| o.take_times()).unwrap_or_default()
    }

    fn refresh_operator(&mut self) -> Result<(), BdError> {
        let lambda = self.cfg.lambda_rpy;
        let n3 = 3 * self.system.len();

        let t0 = Instant::now();
        let mut op = PmeOperator::new(self.system.positions(), self.params)
            .map_err(|e| BdError::Setup(e.to_string()))?;
        let t1 = Instant::now();

        let mut z = vec![0.0; n3 * lambda];
        fill_standard_normal(&mut self.rng, &mut z);
        let kcfg =
            KrylovConfig { tol: self.cfg.e_k, max_iter: self.cfg.max_krylov, check_interval: 1 };
        let (mut d, iterations) = match self.cfg.displacement_mode {
            DisplacementMode::BlockKrylov => {
                let (d, stats) = block_lanczos_sqrt(&mut op, &z, lambda, &kcfg)
                    .map_err(|e| BdError::Krylov(e.to_string()))?;
                (d, stats.iterations)
            }
            DisplacementMode::SingleKrylov => {
                let mut d = vec![0.0; n3 * lambda];
                let mut iters = 0;
                let mut zc = vec![0.0; n3];
                for col in 0..lambda {
                    for i in 0..n3 {
                        zc[i] = z[i * lambda + col];
                    }
                    let (g, stats) = lanczos_sqrt(&mut op, &zc, &kcfg)
                        .map_err(|e| BdError::Krylov(e.to_string()))?;
                    iters += stats.iterations;
                    for i in 0..n3 {
                        d[i * lambda + col] = g[i];
                    }
                }
                (d, iters)
            }
            DisplacementMode::Chebyshev => {
                // Estimate bounds once; reuse for all lambda evaluations.
                let bounds = hibd_krylov::estimate_spectrum_bounds(&mut op, 15)
                    .map_err(|e| BdError::Krylov(e.to_string()))?;
                let ccfg = ChebyshevConfig {
                    tol: self.cfg.e_k,
                    bounds: Some(bounds),
                    ..Default::default()
                };
                let mut d = vec![0.0; n3 * lambda];
                let mut iters = 15; // bound estimation applications
                let mut zc = vec![0.0; n3];
                for col in 0..lambda {
                    for i in 0..n3 {
                        zc[i] = z[i * lambda + col];
                    }
                    let (g, stats) = chebyshev_sqrt(&mut op, &zc, &ccfg)
                        .map_err(|e| BdError::Krylov(e.to_string()))?;
                    iters += stats.degree;
                    for i in 0..n3 {
                        d[i * lambda + col] = g[i];
                    }
                }
                (d, iters)
            }
        };
        let scale = (2.0 * self.cfg.kbt * self.cfg.dt).sqrt();
        for v in d.iter_mut() {
            *v *= scale;
        }
        let t2 = Instant::now();

        self.timings.setup += (t1 - t0).as_secs_f64();
        self.timings.displacements += (t2 - t1).as_secs_f64();
        self.timings.krylov_iterations += iterations;
        self.op = Some(op);
        self.disp = d;
        self.used = 0;
        Ok(())
    }

    /// Advance one BD step.
    pub fn step(&mut self) -> Result<(), BdError> {
        if self.used >= self.cfg.lambda_rpy || self.op.is_none() {
            self.refresh_operator()?;
        }

        let t0 = Instant::now();
        let n3 = 3 * self.system.len();
        let lambda = self.cfg.lambda_rpy;
        let f = total_force(&mut self.forces, &self.system);
        let op = self.op.as_mut().expect("operator refreshed above");
        self.drift_scratch.resize(n3, 0.0);
        self.step_scratch.resize(n3, 0.0);
        op.apply(&f, &mut self.drift_scratch);
        let j = self.used;
        for i in 0..n3 {
            self.step_scratch[i] = self.drift_scratch[i] * self.cfg.dt + self.disp[i * lambda + j];
        }
        self.used += 1;
        self.system.apply_displacements(&self.step_scratch);
        self.timings.stepping += t0.elapsed().as_secs_f64();
        self.timings.steps += 1;
        Ok(())
    }

    /// Advance `m` steps.
    pub fn run(&mut self, m: usize) -> Result<(), BdError> {
        for _ in 0..m {
            self.step()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::RepulsiveHarmonic;

    fn small_system(n: usize, phi: f64, seed: u64) -> ParticleSystem {
        let mut rng = StdRng::seed_from_u64(seed);
        ParticleSystem::random_suspension(n, phi, &mut rng)
    }

    #[test]
    fn steps_advance_with_tuned_parameters() {
        let sys = small_system(30, 0.1, 1);
        let mut bd = MatrixFreeBd::new(sys, MatrixFreeConfig::default(), 42).unwrap();
        bd.add_force(RepulsiveHarmonic::default());
        bd.run(3).unwrap();
        assert_eq!(bd.timings().steps, 3);
        assert!(bd.timings().krylov_iterations > 0);
        assert!(bd.operator_memory_bytes() > 0);
        let l = bd.system().box_l;
        for p in bd.system().positions() {
            for c in 0..3 {
                assert!(p[c] >= 0.0 && p[c] < l);
            }
        }
    }

    #[test]
    fn operator_reused_within_lambda_window() {
        let sys = small_system(20, 0.1, 2);
        let cfg = MatrixFreeConfig { lambda_rpy: 4, ..Default::default() };
        let mut bd = MatrixFreeBd::new(sys, cfg, 5).unwrap();
        bd.run(4).unwrap();
        let setups_after_4 = bd.timings().setup;
        bd.run(3).unwrap(); // one more setup at step 5, reused for 6-7
        let setups_after_7 = bd.timings().setup;
        assert!(setups_after_7 > setups_after_4);
        bd.run(1).unwrap(); // step 8: still inside second window
        assert!((bd.timings().setup - setups_after_7).abs() < 1e-12);
    }

    #[test]
    fn zero_temperature_freezes_force_free_system() {
        let sys = small_system(15, 0.05, 3);
        let before: Vec<_> = sys.positions().to_vec();
        let cfg = MatrixFreeConfig { kbt: 0.0, ..Default::default() };
        let mut bd = MatrixFreeBd::new(sys, cfg, 9).unwrap();
        bd.run(2).unwrap();
        for (a, b) in before.iter().zip(bd.system().positions()) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn rejects_mismatched_pme_box() {
        let sys = small_system(10, 0.1, 4);
        let cfg = MatrixFreeConfig {
            pme: Some(PmeParams { box_l: 999.0, ..PmeParams::default() }),
            ..Default::default()
        };
        assert!(matches!(MatrixFreeBd::new(sys, cfg, 1), Err(BdError::Setup(_))));
    }

    #[test]
    fn single_vector_mode_runs_and_costs_more_iterations() {
        let sys = small_system(15, 0.1, 8);
        let mut block = MatrixFreeBd::new(
            sys.clone(),
            MatrixFreeConfig { lambda_rpy: 8, ..Default::default() },
            3,
        )
        .unwrap();
        block.run(1).unwrap();
        let mut single = MatrixFreeBd::new(
            sys,
            MatrixFreeConfig {
                lambda_rpy: 8,
                displacement_mode: DisplacementMode::SingleKrylov,
                ..Default::default()
            },
            3,
        )
        .unwrap();
        single.run(1).unwrap();
        // Block: iterations counted once per block application; single:
        // summed over the 8 separate solves.
        assert!(
            single.timings().krylov_iterations > block.timings().krylov_iterations,
            "single {} vs block {}",
            single.timings().krylov_iterations,
            block.timings().krylov_iterations
        );
    }

    #[test]
    fn chebyshev_mode_produces_comparable_displacement_scale() {
        // Same seed => same Gaussian block; the RMS displacement from the
        // Chebyshev path must match the block-Krylov path closely (both
        // approximate the same M^{1/2} z at tolerance e_k).
        let run = |mode| {
            let sys = small_system(15, 0.1, 9);
            let cfg = MatrixFreeConfig {
                lambda_rpy: 4,
                e_k: 1e-4,
                displacement_mode: mode,
                ..Default::default()
            };
            let mut bd = MatrixFreeBd::new(sys, cfg, 77).unwrap();
            bd.run(4).unwrap();
            bd.system().unwrapped().to_vec()
        };
        let a = run(DisplacementMode::BlockKrylov);
        let b = run(DisplacementMode::Chebyshev);
        let mut num = 0.0;
        let mut den = 0.0;
        for (p, q) in a.iter().zip(&b) {
            num += (*p - *q).norm2();
            den += p.norm2().max(q.norm2());
        }
        let rel = (num / den.max(1e-300)).sqrt();
        assert!(rel < 0.05, "trajectory mismatch {rel}");
    }

    #[test]
    fn deterministic_trajectories_for_fixed_seed() {
        let run = |seed| {
            let sys = small_system(12, 0.1, 6);
            let mut bd = MatrixFreeBd::new(sys, MatrixFreeConfig::default(), seed).unwrap();
            bd.add_force(RepulsiveHarmonic::default());
            bd.run(3).unwrap();
            bd.system().positions().to_vec()
        };
        let a = run(123);
        let b = run(123);
        let c = run(124);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
        assert!(a.iter().zip(&c).any(|(x, y)| (*x - *y).norm() > 1e-12));
    }
}
