//! `hibd-core`: Brownian dynamics drivers with hydrodynamic interactions.
//!
//! Implements both simulation algorithms of the paper on top of the
//! substrate crates:
//!
//! * [`ewald_bd`] — **Algorithm 1**, the conventional Ewald BD baseline:
//!   dense `3n x 3n` Beenakker-Ewald mobility matrix, Cholesky factor for
//!   the Brownian displacements, matrix reuse over `lambda_RPY` steps;
//! * [`mf_bd`] — **Algorithm 2**, the matrix-free method: a PME operator per
//!   configuration and a block Krylov solver for the displacements;
//! * [`system`] — the particle suspension state (wrapped + unwrapped
//!   coordinates, suspension builders at a target volume fraction);
//! * [`forces`] — deterministic forces `f(r)`: the paper's repulsive
//!   harmonic contact force, plus constant (gravity) and bonded springs for
//!   the example applications;
//! * [`diffusion`] — the translational diffusion-coefficient estimator of
//!   paper Eq. 12, with block-averaged error bars;
//! * [`config`] — the `key = value` simulation spec shared by every front
//!   end (`hibd run` configs double as `hibd serve` spool job files);
//! * [`checkpoint`] — versioned binary snapshot/restart of the full
//!   simulation state;
//! * [`hybrid`] — the CPU + accelerator execution scheme of Section IV-E:
//!   model-driven static partitioning, `alpha` load balancing, and an
//!   overlapped real/reciprocal executor. On this host the accelerators are
//!   *modeled* devices parameterized by Table I (see DESIGN.md).

pub mod analysis;
pub mod checkpoint;
pub mod config;
pub mod diffusion;
pub mod ewald_bd;
pub mod forces;
pub mod hybrid;
pub mod io;
pub mod mf_bd;
pub mod system;

pub use analysis::RdfAccumulator;
pub use checkpoint::Checkpoint;
pub use config::SimSpec;
pub use diffusion::DiffusionEstimator;
pub use ewald_bd::{EwaldBd, EwaldBdConfig};
pub use forces::{ConstantForce, Force, HarmonicBond, LennardJones, RepulsiveHarmonic};
pub use mf_bd::{
    resolve_shape, DisplacementMode, MatrixFreeBd, MatrixFreeConfig, MobilityPlans, ResolvedShape,
};
pub use system::ParticleSystem;
