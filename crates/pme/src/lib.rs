//! `hibd-pme`: the particle-mesh Ewald operator for the RPY tensor.
//!
//! This is the paper's primary contribution (Sections III-A and IV): a
//! matrix-free application of the periodic RPY mobility,
//!
//! `u = PME(f) = M_real f + M_recip f + M_self f`,
//!
//! where the real-space part is a short-cutoff sparse matrix (BCSR, 3x3
//! blocks) and the reciprocal-space part runs through the six-step kernel
//! pipeline of Section IV-A:
//!
//! 1. **Construct P** ([`pmat`]) — the `n x K^3` B-spline interpolation
//!    matrix, precomputed once per particle configuration and reused across
//!    every Krylov iteration;
//! 2. **Spreading** — `F_theta = P^T f_theta`, parallelized over the eight
//!    write-conflict-free *independent sets* of mesh blocks ([`spread`]);
//! 3. **Forward 3D FFT** (three r2c transforms, one per force component);
//! 4. **Influence function** ([`influence`]) — multiply by
//!    `I(k) = |b(k)|^2 m_alpha(|k|) (I - k̂k̂ᵀ) / L^3`, storing one scalar
//!    per mesh point and reconstructing the tensor on the fly;
//! 5. **Inverse 3D FFT** (three c2r transforms);
//! 6. **Interpolation** — `u_theta = P U_theta`.
//!
//! [`operator::PmeOperator`] packages the pipeline behind the
//! [`LinearOperator`](hibd_linalg::LinearOperator) trait so the Krylov
//! displacement solver can consume it; [`tuner`] selects `(K, p, r_max,
//! alpha)` for a target PME accuracy `e_p` (reproducing Table III), and
//! [`perf`] implements the paper's performance model (Section IV-D) with the
//! Table I machine descriptions.

#![allow(clippy::needless_range_loop)] // index-heavy numeric kernels

pub mod bspline;
pub mod influence;
pub mod onthefly;
pub mod operator;
pub mod perf;
pub mod pmat;
pub mod real;
pub(crate) mod simd;
pub mod spread;
pub mod tuner;
pub mod verify;

pub use operator::{PmeOperator, PmeParams, PmePhaseTimes, PmePlans};
pub use tuner::{measure_ep, tune, tune_with_rmax, TunedConfig};
