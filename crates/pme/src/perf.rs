//! The paper's performance model (Section IV-D) and machine descriptions
//! (Table I).
//!
//! Each reciprocal-space phase is modeled either as memory-bandwidth-bound
//! (spreading, influence application, interpolation) or flop-bound at the
//! machine's achievable FFT rate (the two transform phases):
//!
//! * `T_spreading     = (24 K^3 + 36 p^3 n) / B`
//! * `T_fft / T_ifft  = 3 * 2.5 K^3 log2(K^3) / P_fft(K)`
//! * `T_influence     = 52 K^3 / B`
//! * `T_interpolation = 36 p^3 n / B`
//!
//! summing to the paper's Eq. 10, with the memory requirement of Eq. 11.
//! `P_fft(K)` uses a saturation curve: wide-SIMD machines (KNC) only reach
//! their asymptotic FFT rate on large meshes, which reproduces the Figure 6
//! crossover (KNC no faster than the CPU for small problems, up to ~1.6x
//! faster for large ones).
//!
//! **Hardware substitution note.** This host has neither a Westmere-EP pair
//! nor Xeon Phi cards; the machine constants below encode Table I plus
//! canonical MKL FFT efficiencies, and the hybrid scheduler consumes the
//! *model*, exactly as the paper's static partitioner does. See DESIGN.md.

/// A machine description for the performance model.
#[derive(Clone, Copy, Debug)]
pub struct Machine {
    pub name: &'static str,
    /// STREAM memory bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Asymptotic achievable forward 3D-FFT rate, flop/s.
    pub fft_flops: f64,
    /// Asymptotic achievable inverse 3D-FFT rate, flop/s.
    pub ifft_flops: f64,
    /// Mesh size `K^3` at which the FFT rate reaches half its asymptote
    /// (efficiency saturation scale).
    pub fft_sat_k3: f64,
    /// Peak double-precision flop rate (Table I), for reporting.
    pub peak_flops: f64,
}

impl Machine {
    /// Dual-socket Intel Xeon X5680 (Westmere-EP), Table I column 1.
    pub fn westmere() -> Machine {
        Machine {
            name: "2x Xeon X5680 (Westmere-EP)",
            bandwidth: 41.6e9,
            fft_flops: 24.0e9,
            ifft_flops: 24.0e9,
            fft_sat_k3: 32.0 * 32.0 * 32.0,
            peak_flops: 160.0e9,
        }
    }

    /// Intel Xeon Phi (Knights Corner), Table I column 2. The inverse FFT
    /// rate is depressed, reflecting the paper's observation that MKL's 3D
    /// inverse FFT was inefficient on KNC at the time.
    pub fn knc() -> Machine {
        Machine {
            name: "Intel Xeon Phi (KNC)",
            bandwidth: 160.0e9,
            fft_flops: 55.0e9,
            ifft_flops: 30.0e9,
            fft_sat_k3: 128.0 * 128.0 * 128.0,
            peak_flops: 1074.0e9,
        }
    }

    /// Achievable forward-FFT rate on a `K^3` mesh.
    pub fn p_fft(&self, k: usize) -> f64 {
        let k3 = (k * k * k) as f64;
        self.fft_flops * k3 / (k3 + self.fft_sat_k3)
    }

    /// Achievable inverse-FFT rate on a `K^3` mesh.
    pub fn p_ifft(&self, k: usize) -> f64 {
        let k3 = (k * k * k) as f64;
        self.ifft_flops * k3 / (k3 + self.fft_sat_k3)
    }
}

/// Performance model for one PME configuration on one machine.
#[derive(Clone, Copy, Debug)]
pub struct PerfModel {
    pub machine: Machine,
    /// Mesh dimension `K`.
    pub k: usize,
    /// Spline order `p`.
    pub p: usize,
    /// Number of particles.
    pub n: usize,
}

impl PerfModel {
    pub fn new(machine: Machine, k: usize, p: usize, n: usize) -> PerfModel {
        PerfModel { machine, k, p, n }
    }

    fn k3(&self) -> f64 {
        (self.k * self.k * self.k) as f64
    }

    fn p3n(&self) -> f64 {
        (self.p * self.p * self.p * self.n) as f64
    }

    /// Spreading bytes: mesh init `3*8*K^3` + P footprint `12 p^3 n`
    /// + scattered writes `3*8*p^3 n`.
    pub fn spreading_bytes(&self) -> f64 {
        24.0 * self.k3() + 36.0 * self.p3n()
    }

    pub fn t_spreading(&self) -> f64 {
        self.spreading_bytes() / self.machine.bandwidth
    }

    /// Forward FFT flops: three r2c transforms at `2.5 K^3 log2(K^3)` each.
    pub fn fft_flops(&self) -> f64 {
        3.0 * 2.5 * self.k3() * self.k3().log2()
    }

    pub fn t_fft(&self) -> f64 {
        self.fft_flops() / self.machine.p_fft(self.k)
    }

    pub fn t_ifft(&self) -> f64 {
        self.fft_flops() / self.machine.p_ifft(self.k)
    }

    /// Influence bytes: scalar table `8*K^3/2` + read `C` and write `D`
    /// (three complex components over the half spectrum each way).
    pub fn influence_bytes(&self) -> f64 {
        (8.0 + 2.0 * 48.0) * self.k3() / 2.0
    }

    pub fn t_influence(&self) -> f64 {
        self.influence_bytes() / self.machine.bandwidth
    }

    /// Interpolation bytes: P footprint + gathered reads.
    pub fn interpolation_bytes(&self) -> f64 {
        36.0 * self.p3n()
    }

    pub fn t_interpolation(&self) -> f64 {
        self.interpolation_bytes() / self.machine.bandwidth
    }

    /// Total reciprocal-space time (paper Eq. 10).
    pub fn t_recip(&self) -> f64 {
        self.t_spreading()
            + self.t_fft()
            + self.t_influence()
            + self.t_ifft()
            + self.t_interpolation()
    }

    /// Reciprocal-space memory (paper Eq. 11): meshes + P + influence.
    pub fn m_pme_bytes(&self) -> f64 {
        24.0 * self.k3() + 12.0 * self.p3n() + 8.0 * self.k3() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_10_terms_recompose() {
        // The sum of the bandwidth-bound terms must equal the paper's
        // (72 p^3 n + 76 K^3)/B.
        let m = PerfModel::new(Machine::westmere(), 64, 4, 5000);
        let bw_terms = m.t_spreading() + m.t_influence() + m.t_interpolation();
        let k3 = (64.0f64).powi(3);
        let p3n = 64.0 * 5000.0;
        let want = (72.0 * p3n + 76.0 * k3) / m.machine.bandwidth;
        assert!((bw_terms - want).abs() < 1e-12 * want, "{bw_terms} vs {want}");
    }

    #[test]
    fn equation_11_memory() {
        let m = PerfModel::new(Machine::westmere(), 128, 6, 80000);
        let k3 = (128.0f64).powi(3);
        let p3n = 216.0 * 80000.0;
        let want = 24.0 * k3 + 12.0 * p3n + 4.0 * k3;
        assert!((m.m_pme_bytes() - want).abs() < 1.0);
    }

    #[test]
    fn fft_dominates_at_small_n_bandwidth_at_large_n() {
        // Paper Fig. 5a: FFT dominates for few particles; spreading /
        // interpolation overtake as n grows at fixed K.
        let small = PerfModel::new(Machine::westmere(), 256, 6, 1000);
        assert!(small.t_fft() > small.t_spreading());
        let large = PerfModel::new(Machine::westmere(), 256, 6, 2_000_000);
        assert!(large.t_spreading() > large.t_fft());
    }

    #[test]
    fn knc_slower_on_small_meshes_faster_on_large() {
        // The Figure 6 crossover.
        let small_w = PerfModel::new(Machine::westmere(), 32, 4, 500).t_recip();
        let small_k = PerfModel::new(Machine::knc(), 32, 4, 500).t_recip();
        assert!(small_k > small_w * 0.8, "KNC not much faster on tiny meshes");
        let large_w = PerfModel::new(Machine::westmere(), 256, 6, 200_000).t_recip();
        let large_k = PerfModel::new(Machine::knc(), 256, 6, 200_000).t_recip();
        assert!(large_w / large_k > 1.3, "KNC {large_k} vs Westmere {large_w}");
        assert!(large_w / large_k < 2.5);
    }

    #[test]
    fn recip_time_scales_superlinearly_with_mesh() {
        let t64 = PerfModel::new(Machine::westmere(), 64, 4, 5000).t_recip();
        let t128 = PerfModel::new(Machine::westmere(), 128, 4, 5000).t_recip();
        assert!(t128 > 7.0 * t64, "K doubling costs ~8x: {t128} vs {t64}");
    }
}
