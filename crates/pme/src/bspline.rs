//! Cardinal B-splines and their Euler (exponential-interpolation) factors.
//!
//! Smooth PME (paper Section III-A, ref. \[7\]) spreads each force onto `p^3`
//! mesh points with weights `W_p(u - m)`, where `W_p` is the cardinal
//! B-spline of order `p` (a piecewise polynomial of degree `p-1` supported
//! on `(0, p)`). Interpolating complex exponentials with B-splines leaves a
//! per-mode correction `|b(m)|^2` that is folded into the influence
//! function.

use std::f64::consts::TAU;

/// Evaluate the cardinal B-spline `M_p(u)` of order `p >= 2` (support
/// `(0, p)`), by the standard recurrence.
pub fn bspline(p: usize, u: f64) -> f64 {
    assert!(p >= 2, "B-spline order must be >= 2");
    if u <= 0.0 || u >= p as f64 {
        return 0.0;
    }
    // M_2 is the hat function on (0, 2).
    if p == 2 {
        return 1.0 - (u - 1.0).abs();
    }
    let pm = (p - 1) as f64;
    (u / pm) * bspline(p - 1, u) + ((p as f64 - u) / pm) * bspline(p - 1, u - 1.0)
}

/// Spreading stencil for a particle with scaled coordinate `u in [0, K)`:
/// returns the first mesh index (possibly negative, caller wraps mod `K`)
/// and the `p` weights `w[t] = W_p(u - (first + t))`.
///
/// `weights` must have length `p`.
pub fn stencil(p: usize, u: f64, weights: &mut [f64]) -> i64 {
    debug_assert_eq!(weights.len(), p);
    let floor = u.floor();
    let first = floor as i64 - (p as i64 - 1);
    let frac = u - floor;
    // Argument of W_p for mesh point first + t is u - first - t = frac + p - 1 - t.
    for (t, w) in weights.iter_mut().enumerate() {
        *w = bspline(p, frac + (p - 1 - t) as f64);
    }
    first
}

/// `|b(m)|^2` factors for one mesh dimension of size `k` and order `p`:
/// `b(m) = e^{2 pi i (p-1) m / k} / Σ_{j=0}^{p-2} W_p(j+1) e^{2 pi i m j / k}`.
///
/// Modes where the denominator (numerically) vanishes are zeroed, which
/// simply drops them from the reciprocal sum.
pub fn euler_factors(k: usize, p: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(k);
    let w: Vec<f64> = (0..p - 1).map(|j| bspline(p, (j + 1) as f64)).collect();
    for m in 0..k {
        let mut re = 0.0;
        let mut im = 0.0;
        for (j, wj) in w.iter().enumerate() {
            let phase = TAU * (m as f64) * (j as f64) / k as f64;
            re += wj * phase.cos();
            im += wj * phase.sin();
        }
        let d2 = re * re + im * im;
        out.push(if d2 < 1e-10 { 0.0 } else { 1.0 / d2 });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bspline_partition_of_unity() {
        // Σ_m W_p(u - m) = 1 for any u.
        for p in [2usize, 3, 4, 5, 6, 8] {
            for i in 0..50 {
                let u = 10.0 + 0.37 * i as f64;
                let mut s = 0.0;
                for m in -20..40 {
                    s += bspline(p, u - m as f64);
                }
                assert!((s - 1.0).abs() < 1e-12, "p={p} u={u}: sum {s}");
            }
        }
    }

    #[test]
    fn bspline_is_nonnegative_and_supported_on_0_p() {
        for p in [2usize, 4, 6] {
            assert_eq!(bspline(p, 0.0), 0.0);
            assert_eq!(bspline(p, p as f64), 0.0);
            assert_eq!(bspline(p, -0.5), 0.0);
            assert_eq!(bspline(p, p as f64 + 0.5), 0.0);
            for i in 1..(10 * p) {
                let u = i as f64 * 0.1;
                assert!(bspline(p, u) >= 0.0);
            }
        }
    }

    #[test]
    fn bspline_symmetry_about_center() {
        for p in [3usize, 4, 5, 6] {
            for i in 0..20 {
                let d = 0.11 * i as f64;
                let c = p as f64 / 2.0;
                assert!((bspline(p, c - d) - bspline(p, c + d)).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn bspline_known_values() {
        // M_2 hat: M_2(1) = 1. M_4 cubic: M_4(2) = 2/3, M_4(1) = 1/6.
        assert!((bspline(2, 1.0) - 1.0).abs() < 1e-15);
        assert!((bspline(4, 2.0) - 2.0 / 3.0).abs() < 1e-15);
        assert!((bspline(4, 1.0) - 1.0 / 6.0).abs() < 1e-15);
        assert!((bspline(4, 3.0) - 1.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn stencil_weights_sum_to_one_and_cover_support() {
        for p in [4usize, 6] {
            for u in [3.2, 7.9, 0.4, 15.0001] {
                let mut w = vec![0.0; p];
                let first = stencil(p, u, &mut w);
                let s: f64 = w.iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "p={p} u={u}");
                assert!(w.iter().all(|&x| x >= 0.0));
                // The stencil spans the p mesh points below/at u.
                assert_eq!(first, u.floor() as i64 - (p as i64 - 1));
            }
        }
    }

    #[test]
    fn euler_factors_are_positive_and_one_at_dc() {
        for (k, p) in [(16usize, 4usize), (32, 6), (20, 4), (10, 8)] {
            let b2 = euler_factors(k, p);
            assert_eq!(b2.len(), k);
            // At m = 0 the denominator is Σ W_p(j+1) = 1 (partition of
            // unity at integer nodes), so |b|^2 = 1.
            assert!((b2[0] - 1.0).abs() < 1e-12, "k={k} p={p}");
            for &v in &b2 {
                assert!(v >= 0.0);
            }
        }
    }

    #[test]
    fn euler_factors_interpolate_exponentials() {
        // Defining property: for any mode m (away from degenerate modes),
        // e^{2 pi i m u / k} ≈ b(m) Σ_j W_p(u - j) e^{2 pi i m j / k}.
        // Verify |b(m)|^2 * |Σ_j W_p(u - j) e^{2 pi i m j/k}|^2 ≈ 1 at
        // integer u (exact there).
        let (k, p) = (16usize, 4usize);
        let b2 = euler_factors(k, p);
        let u = 5.0;
        for m in 0..k / 2 {
            let mut re = 0.0;
            let mut im = 0.0;
            for j in -(p as i64)..(k as i64 + p as i64) {
                let w = bspline(p, u - j as f64);
                if w > 0.0 {
                    let phase = TAU * m as f64 * j as f64 / k as f64;
                    re += w * phase.cos();
                    im += w * phase.sin();
                }
            }
            let s2 = re * re + im * im;
            if b2[m] > 0.0 {
                assert!((b2[m] * s2 - 1.0).abs() < 1e-10, "m={m}: {}", b2[m] * s2);
            }
        }
    }
}
