//! PME parameter selection (the procedure behind the paper's Table III).
//!
//! Given a particle count, volume fraction and target PME accuracy `e_p`,
//! choose `(K, p, r_max, alpha)` such that the real-space truncation error,
//! the reciprocal-space (Gaussian) truncation error and the B-spline
//! interpolation error are all at or below the target, while keeping the
//! real-space matrix `O(n)` ("practically alpha is limited if sparsity and
//! scalable storage is to be maintained", Section IV-E).
//!
//! Also provides [`measure_ep`], the empirical error measurement
//! `e_p = |u_pme - u_ref|_2 / |u_ref|_2` used to validate the choices.

use crate::operator::{PmeOperator, PmeParams};
use hibd_fft::FftPlan;
use hibd_linalg::LinearOperator;
use hibd_mathx::Vec3;

/// A tuned configuration plus the target it was tuned for.
#[derive(Clone, Copy, Debug)]
pub struct TunedConfig {
    pub params: PmeParams,
    /// The accuracy target the tuner aimed at.
    pub target_ep: f64,
}

/// Box side for `n` spheres of radius `a` at volume fraction `phi`:
/// `L = (4 pi a^3 n / (3 phi))^{1/3}`.
pub fn box_from_volume_fraction(n: usize, phi: f64, a: f64) -> f64 {
    assert!(phi > 0.0 && phi < 1.0, "volume fraction must be in (0,1)");
    (4.0 * std::f64::consts::PI * a.powi(3) * n as f64 / (3.0 * phi)).cbrt()
}

/// Smallest even *smooth* (mixed-radix) FFT dimension `>= k`. The FFT crate
/// can transform any size via Bluestein, but smooth sizes are several times
/// faster, so the tuner only ever picks these.
pub fn next_smooth_even(k: usize) -> usize {
    let mut k = k.max(2);
    if k % 2 == 1 {
        k += 1;
    }
    while FftPlan::new_mixed_radix(k).is_err() {
        k += 2;
    }
    k
}

/// Magnitude of the real-space Ewald kernel at radius `r` (units of `mu0`):
/// the truncation error of dropping a neighbor just outside the cutoff.
pub fn real_kernel_magnitude(a: f64, box_l: f64, alpha: f64, r: f64) -> f64 {
    let kernel = hibd_rpy::RpyEwald::kernel_only(a, 1.0, box_l, alpha);
    let (fi, frr) = kernel.real_scalars(r);
    fi.abs().max(frr.abs()).max((fi + frr).abs())
}

/// Reciprocal-sum tail beyond `k_cut` (units of `mu0`): the continuum
/// estimate `(1/(2 pi^2)) ∫_{k_cut}^∞ m_alpha(k) k^2 dk` of the dropped
/// modes' contribution to a mobility entry.
pub fn recip_tail_magnitude(a: f64, box_l: f64, alpha: f64, k_cut: f64) -> f64 {
    let kernel = hibd_rpy::RpyEwald::kernel_only(a, 1.0, box_l, alpha);
    // Simpson integration out to where the Gaussian has fully decayed.
    let k_hi = (k_cut + 10.0 * alpha).max(2.0 * k_cut);
    let steps = 512;
    let h = (k_hi - k_cut) / steps as f64;
    let f = |k: f64| kernel.recip_scalar(k * k).abs() * k * k;
    let mut s = f(k_cut) + f(k_hi);
    for i in 1..steps {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        s += w * f(k_cut + i as f64 * h);
    }
    s * h / 3.0 / (2.0 * std::f64::consts::PI * std::f64::consts::PI)
}

/// Find `alpha` such that the real-space kernel magnitude at `r_max` equals
/// `target` (bisection; the magnitude is decreasing in `alpha` over the
/// bracket).
fn solve_alpha(a: f64, box_l: f64, r_max: f64, target: f64) -> f64 {
    let mut lo = 0.05 / r_max;
    let mut hi = 30.0 / r_max;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if real_kernel_magnitude(a, box_l, mid, r_max) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Find the reciprocal cutoff `k_max` with tail below `target`.
fn solve_kmax(a: f64, box_l: f64, alpha: f64, target: f64) -> f64 {
    let mut k = 2.0 * alpha;
    while recip_tail_magnitude(a, box_l, alpha, k) > target && k < 200.0 * alpha {
        k *= 1.05;
    }
    k
}

/// Choose PME parameters for `n` particles at volume fraction `phi` with
/// target relative accuracy `target_ep` (e.g. `1e-3` as in Table III).
///
/// Strategy (mirrors the shape of Table III):
/// * `r_max` starts at `4a` for 1000 particles and grows slowly
///   (`~n^{1/6}`), keeping the real-space matrix sparse while letting
///   `alpha` — and with it the mesh — shrink for very large systems;
/// * `alpha` is bisected so the real-space kernel magnitude at `r_max` is a
///   fifth of the target (the Beenakker kernel's polynomial prefactors make
///   closed-form choices like `sqrt(ln 1/e_p)/r_max` far too optimistic, and
///   several neighbors sit just outside the cutoff);
/// * the reciprocal cutoff `k_max` is grown until the continuum tail
///   estimate is a fifth of the target, and `K >= k_max L / pi` (with the
///   B-spline margin below) is rounded to an FFT-smooth even size;
/// * `p = 4` for loose targets, `p = 6` at `1e-3` and below, `p = 8` for
///   very tight targets.
pub fn tune(n: usize, phi: f64, a: f64, eta: f64, target_ep: f64) -> TunedConfig {
    assert!(n > 0);
    let box_l = box_from_volume_fraction(n, phi, a);
    let mut r_max = 4.0 * a * (n as f64 / 1000.0).powf(1.0 / 6.0).max(1.0);
    r_max = r_max.clamp((2.5 * a).min(box_l / 2.0), box_l / 2.0);
    tune_with_rmax(n, phi, a, eta, target_ep, r_max)
}

/// [`tune`] with an externally imposed real-space cutoff — the knob the
/// hybrid load balancer turns (Section IV-E: `alpha` is tuned so the CPU's
/// real-space work matches the accelerator's reciprocal-space work).
pub fn tune_with_rmax(
    n: usize,
    phi: f64,
    a: f64,
    eta: f64,
    target_ep: f64,
    r_max: f64,
) -> TunedConfig {
    assert!(n > 0);
    assert!(target_ep > 0.0 && target_ep < 0.5);
    let box_l = box_from_volume_fraction(n, phi, a);
    let r_max = r_max.clamp(1e-6, box_l / 2.0);

    let share = target_ep / 5.0;
    let alpha = solve_alpha(a, box_l, r_max, share);
    let k_max = solve_kmax(a, box_l, alpha, share);

    let spline_order = if target_ep >= 1e-2 {
        4
    } else if target_ep >= 1e-4 {
        6
    } else {
        8
    };
    // B-spline interpolation error model: err ~ C_p * margin^{-p}, with
    // C_p calibrated against dense-Ewald measurements (see tests). The mesh
    // margin is chosen so that term also lands at a third of the target.
    let c_p: f64 = match spline_order {
        4 => 1.2e-2,
        6 => 4e-3,
        _ => 2e-3,
    };
    let margin = (c_p / share).powf(1.0 / spline_order as f64).max(1.1);
    let k_mesh = next_smooth_even((margin * k_max * box_l / std::f64::consts::PI).ceil() as usize)
        .max(next_smooth_even(2 * spline_order));

    TunedConfig {
        params: PmeParams { a, eta, box_l, alpha, mesh_dim: k_mesh, spline_order, r_max },
        target_ep,
    }
}

/// Measure `e_p = |u_pme - u_ref| / |u_ref|` over `trials` random force
/// vectors, where `reference` is any trusted operator of the same dimension
/// (tight-tolerance dense Ewald, or a deliberately over-resolved PME).
pub fn measure_ep(
    op: &mut PmeOperator,
    reference: &mut dyn LinearOperator,
    trials: usize,
    seed: u64,
) -> f64 {
    let dim = op.dim();
    assert_eq!(dim, reference.dim());
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut worst = 0.0f64;
    let mut u_pme = vec![0.0; dim];
    let mut u_ref = vec![0.0; dim];
    for _ in 0..trials.max(1) {
        let f: Vec<f64> = (0..dim).map(|_| next()).collect();
        op.apply(&f, &mut u_pme);
        reference.apply(&f, &mut u_ref);
        let num: f64 = u_pme.iter().zip(&u_ref).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        let den: f64 = u_ref.iter().map(|v| v * v).sum::<f64>().sqrt();
        worst = worst.max(num / den.max(1e-300));
    }
    worst
}

/// Build a deliberately over-resolved reference PME operator for large
/// systems where the dense Ewald matrix is unaffordable: double-density
/// mesh, order-8 splines, and a real-space cutoff enlarged within `L/2`.
pub fn reference_operator(positions: &[Vec3], base: &PmeParams) -> PmeOperator {
    let tighter = PmeParams {
        mesh_dim: next_smooth_even(base.mesh_dim * 3 / 2),
        spline_order: 8,
        r_max: (base.r_max * 1.5).min(base.box_l / 2.0),
        alpha: base.alpha, // same split; errors shrink on both sides
        ..*base
    };
    PmeOperator::new(positions, tighter).expect("reference operator construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hibd_linalg::DenseOp;
    use hibd_rpy::{dense_ewald_mobility, RpyEwald};

    fn lcg_positions(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * box_l
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    #[test]
    fn box_matches_volume_fraction() {
        let l = box_from_volume_fraction(1000, 0.2, 1.0);
        let phi = 1000.0 * 4.0 / 3.0 * std::f64::consts::PI / l.powi(3);
        assert!((phi - 0.2).abs() < 1e-12);
        // Paper's N1000 configuration: L ≈ 27.6.
        assert!((l - 27.6).abs() < 0.2, "L = {l}");
    }

    #[test]
    fn next_smooth_even_properties() {
        assert_eq!(next_smooth_even(2), 2);
        assert_eq!(next_smooth_even(31), 32);
        assert_eq!(next_smooth_even(33), 36); // 34 = 2*17, 17 > MAX_RADIX
        for k in [3usize, 17, 63, 100, 255, 399] {
            let s = next_smooth_even(k);
            assert!(s >= k && s.is_multiple_of(2));
            assert!(FftPlan::new(s).is_ok(), "k={k} -> {s}");
        }
    }

    #[test]
    fn tuned_parameters_are_consistent() {
        for n in [100usize, 1000, 10000, 100000] {
            let cfg = tune(n, 0.2, 1.0, 1.0, 1e-3);
            let p = cfg.params;
            assert!(p.r_max <= p.box_l / 2.0 + 1e-9, "n={n}");
            assert!(p.alpha > 0.0);
            assert!(p.mesh_dim.is_multiple_of(2));
            assert!(FftPlan::new(p.mesh_dim).is_ok());
            // The real-space kernel magnitude at the cutoff meets the
            // tuner's per-term share of the target.
            let mag = real_kernel_magnitude(p.a, p.box_l, p.alpha, p.r_max);
            assert!(mag <= 1e-3 / 5.0 * 1.01, "n={n} kernel magnitude {mag:e}");
        }
    }

    #[test]
    fn mesh_grows_with_system_size() {
        let k1 = tune(1000, 0.2, 1.0, 1.0, 1e-3).params.mesh_dim;
        let k2 = tune(64000, 0.2, 1.0, 1.0, 1e-3).params.mesh_dim;
        assert!(k2 as f64 >= 1.4 * k1 as f64, "K(64k)={k2} vs K(1k)={k1}");
    }

    #[test]
    #[ignore]
    fn probe_margin_sweep() {
        let n = 40;
        for margin in [1.15f64, 1.3, 1.5, 2.0] {
            let mut cfg = tune(n, 0.2, 1.0, 1.0, 1e-3);
            let base_k = (cfg.params.mesh_dim as f64 / 1.35 * margin).ceil() as usize;
            cfg.params.mesh_dim = next_smooth_even(base_k);
            let p = cfg.params;
            let pos = lcg_positions(n, p.box_l, 5);
            let mut op = PmeOperator::new(&pos, p).unwrap();
            let dense = dense_ewald_mobility(&pos, &RpyEwald::new(p.a, p.eta, p.box_l, 0.5, 1e-10));
            let mut reference = DenseOp::new(dense);
            let ep = measure_ep(&mut op, &mut reference, 2, 77);
            println!(
                "margin {margin}: K={} p={} alpha={:.3} rmax={} ep={ep:e}",
                p.mesh_dim, p.spline_order, p.alpha, p.r_max
            );
        }
    }

    #[test]
    fn tuned_config_achieves_its_target_on_a_small_system() {
        // End-to-end tuner validation against dense Ewald.
        let n = 40;
        let cfg = tune(n, 0.2, 1.0, 1.0, 1e-3);
        let p = cfg.params;
        let pos = lcg_positions(n, p.box_l, 5);
        let mut op = PmeOperator::new(&pos, p).unwrap();
        let dense = dense_ewald_mobility(&pos, &RpyEwald::new(p.a, p.eta, p.box_l, 0.5, 1e-10));
        let mut reference = DenseOp::new(dense);
        let ep = measure_ep(&mut op, &mut reference, 3, 77);
        assert!(ep < 1e-3, "measured e_p {ep:e} exceeds target 1e-3");
    }

    #[test]
    fn reference_operator_is_tighter() {
        let n = 30;
        let cfg = tune(n, 0.2, 1.0, 1.0, 1e-2);
        let p = cfg.params;
        let pos = lcg_positions(n, p.box_l, 9);
        let mut op = PmeOperator::new(&pos, p).unwrap();
        let mut refop = reference_operator(&pos, &p);
        let dense = dense_ewald_mobility(&pos, &RpyEwald::new(p.a, p.eta, p.box_l, 0.5, 1e-10));
        let mut exact = DenseOp::new(dense);
        let ep_base = measure_ep(&mut op, &mut exact, 2, 3);
        let ep_ref = measure_ep(&mut refop, &mut exact, 2, 3);
        assert!(ep_ref < ep_base, "reference ({ep_ref:e}) must beat base ({ep_base:e})");
    }
}
