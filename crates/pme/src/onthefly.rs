//! On-the-fly spreading/interpolation (the Figure 4 baseline).
//!
//! Instead of storing `P`, the B-spline weights are recomputed from the
//! particle positions at every application. This lowers memory traffic (no
//! `12 p^3 n` bytes of matrix reads) but pays the polynomial evaluation each
//! time; the paper finds the precomputed variant ~1.5x faster because `P` is
//! reused across the 300+ PME applications of a time step.

use crate::pmat::{fill_row, InterpMatrix};
use crate::spread::SpreadPlan;
use hibd_hot as hibd;
use rayon::prelude::*;

/// Maximum supported spline order for the stack-allocated row buffers.
pub use crate::pmat::MAX_ORDER;

/// Spread all three components, recomputing weights per particle.
/// `mesh` is `[F_x | F_y | F_z]`, zeroed by this call.
#[hibd::hot]
pub fn spread_on_the_fly(plan: &SpreadPlan, pm: &InterpMatrix, f: &[f64], mesh: &mut [f64]) {
    let k = pm.k;
    let p = pm.p;
    assert!(p <= MAX_ORDER, "spline order > {MAX_ORDER} not supported on the fly");
    let k3 = k * k * k;
    assert_eq!(mesh.len(), 3 * k3);
    mesh.par_chunks_mut(8192).for_each(|c| c.fill(0.0));

    // Reuse the independent-set schedule; only the weight source differs.
    plan.for_each_block_set(
        |rows, mesh_ptr| {
            // SAFETY: `for_each_block_set` hands concurrently running
            // closures blocks from one parity class only, and those blocks'
            // stencil write footprints are disjoint (see the independent-set
            // proof in spread.rs, machine-checked by the schedule verifier);
            // the pointer covers the live `3*K^3` mesh passed in below.
            let mesh = unsafe { std::slice::from_raw_parts_mut(mesh_ptr, 3 * k3) };
            let (mx, rest) = mesh.split_at_mut(k3);
            let (my, mz) = rest.split_at_mut(k3);
            let mut cols = [0u32; MAX_ORDER * MAX_ORDER * MAX_ORDER];
            let mut vals = [0.0f64; MAX_ORDER * MAX_ORDER * MAX_ORDER];
            let p3 = p * p * p;
            for &r in rows {
                let r = r as usize;
                fill_row(&pm.scaled[r], k, p, &mut cols[..p3], &mut vals[..p3]);
                let (fx, fy, fz) = (f[3 * r], f[3 * r + 1], f[3 * r + 2]);
                crate::simd::spread_row(p, &cols[..p3], &vals[..p3], fx, fy, fz, mx, my, mz);
            }
        },
        mesh,
    );
}

/// Interpolate all three components, recomputing weights per particle.
#[hibd::hot]
pub fn interpolate_on_the_fly(pm: &InterpMatrix, mesh: &[f64], u: &mut [f64]) {
    let k = pm.k;
    let p = pm.p;
    assert!(p <= MAX_ORDER);
    let k3 = k * k * k;
    assert_eq!(mesh.len(), 3 * k3);
    let (mx, rest) = mesh.split_at(k3);
    let (my, mz) = rest.split_at(k3);
    let p3 = p * p * p;
    u.par_chunks_mut(3).enumerate().for_each(|(r, ur)| {
        let mut cols = [0u32; MAX_ORDER * MAX_ORDER * MAX_ORDER];
        let mut vals = [0.0f64; MAX_ORDER * MAX_ORDER * MAX_ORDER];
        fill_row(&pm.scaled[r], k, p, &mut cols[..p3], &mut vals[..p3]);
        let [ax, ay, az] = crate::simd::interp_row(p, &cols[..p3], &vals[..p3], mx, my, mz);
        ur[0] = ax;
        ur[1] = ay;
        ur[2] = az;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmat::build_interp_matrix;
    use crate::spread::interpolate;
    use hibd_mathx::Vec3;

    fn lcg_positions(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * box_l
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    fn lcg_forces(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (0..3 * n)
            .map(|_| {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn on_the_fly_spreading_matches_precomputed() {
        let (n, k, p, box_l) = (120usize, 24usize, 4usize, 12.0);
        let pos = lcg_positions(n, box_l, 1);
        let pm = build_interp_matrix(&pos, box_l, k, p);
        let plan = SpreadPlan::new(&pm.scaled, k, p);
        let f = lcg_forces(n, 3);
        let k3 = k * k * k;
        let mut m1 = vec![0.0; 3 * k3];
        let mut m2 = vec![0.0; 3 * k3];
        plan.spread(&pm, &f, &mut m1);
        spread_on_the_fly(&plan, &pm, &f, &mut m2);
        let maxd = m1.iter().zip(&m2).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        assert!(maxd < 1e-14, "{maxd}");
    }

    #[test]
    fn on_the_fly_interpolation_matches_precomputed() {
        let (n, k, p, box_l) = (90usize, 16usize, 6usize, 9.0);
        let pos = lcg_positions(n, box_l, 5);
        let pm = build_interp_matrix(&pos, box_l, k, p);
        let k3 = k * k * k;
        let mesh = lcg_forces(k3, 7); // 3*k3 values
        let mut u1 = vec![0.0; 3 * n];
        let mut u2 = vec![0.0; 3 * n];
        interpolate(&pm, &mesh, &mut u1);
        interpolate_on_the_fly(&pm, &mesh, &mut u2);
        let maxd = u1.iter().zip(&u2).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        assert!(maxd < 1e-14, "{maxd}");
    }
}
