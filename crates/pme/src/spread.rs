//! Parallel spreading via independent sets (paper Section IV-B2, Figure 2).
//!
//! Spreading is `F_theta = P^T f_theta`: a scatter with write conflicts when
//! two particles' stencils overlap. The paper's solution: partition the mesh
//! into blocks of side `>= p`, group blocks into 8 parity classes ("independent
//! sets") such that no two blocks in a class are adjacent (including across
//! the periodic seam), and run the classes sequentially with all blocks of a
//! class scattering in parallel — race-free by construction, no atomics.
//!
//! Disjointness argument: a particle binned in block `b` (by the cell
//! `floor(u)`) writes mesh cells in `[b_start - p + 1, b_end - 1]` per
//! dimension. Two same-parity blocks are separated by at least one full
//! block of side `>= p > p - 2`, so their write footprints cannot meet; with
//! an even block count per dimension the parity classes remain proper around
//! the periodic ring.

use crate::pmat::InterpMatrix;
use hibd_hot as hibd;
use hibd_mathx::Vec3;
use rayon::prelude::*;

/// Column-tile width of the batched scatter/gather kernels: the per-block
/// working set lives in a stack array of `3 * COL_TILE` lanes (no heap), and
/// widths beyond the tile loop over tiles, re-reading the P row once per
/// tile. Typical block widths (`s <= 16`) take a single pass.
pub(crate) const COL_TILE: usize = 16;

/// Block decomposition of the mesh with particles binned per block.
#[derive(Clone, Debug)]
pub struct SpreadPlan {
    /// Mesh dimension.
    k: usize,
    /// Blocks per dimension (even), or 0 in serial-fallback mode.
    nb: usize,
    /// Block side in mesh cells (last block per dim may be larger).
    bs: usize,
    /// Particles grouped by block: CSR over `nb^3` blocks.
    start: Vec<usize>,
    members: Vec<u32>,
    /// Block ids per parity class.
    sets: [Vec<u32>; 8],
    serial: bool,
}

impl SpreadPlan {
    /// Build the plan from the scaled coordinates of the particles.
    pub fn new(scaled: &[Vec3], k: usize, p: usize) -> SpreadPlan {
        let bs = p.max(2);
        let mut nb = k / bs;
        if nb % 2 == 1 {
            nb -= 1;
        }
        if nb < 2 {
            // Mesh too small to guarantee disjoint write sets: serial mode.
            return SpreadPlan {
                k,
                nb: 0,
                bs,
                start: vec![0, scaled.len()],
                members: (0..scaled.len() as u32).collect(),
                sets: Default::default(),
                serial: true,
            };
        }
        let nb3 = nb * nb * nb;
        let block_of_dim = |u: f64| -> usize { ((u as usize) / bs).min(nb - 1) };
        let block_of = |u: &Vec3| -> usize {
            (block_of_dim(u.x) * nb + block_of_dim(u.y)) * nb + block_of_dim(u.z)
        };
        // Counting sort of particles into blocks.
        let mut count = vec![0usize; nb3 + 1];
        for u in scaled {
            count[block_of(u) + 1] += 1;
        }
        for b in 0..nb3 {
            count[b + 1] += count[b];
        }
        let start = count.clone();
        let mut cursor = count;
        let mut members = vec![0u32; scaled.len()];
        for (i, u) in scaled.iter().enumerate() {
            let b = block_of(u);
            members[cursor[b]] = i as u32;
            cursor[b] += 1;
        }
        // Parity classes.
        let mut sets: [Vec<u32>; 8] = Default::default();
        for bx in 0..nb {
            for by in 0..nb {
                for bz in 0..nb {
                    let parity = (bx % 2) * 4 + (by % 2) * 2 + (bz % 2);
                    sets[parity].push(((bx * nb + by) * nb + bz) as u32);
                }
            }
        }
        let plan = SpreadPlan { k, nb, bs, start, members, sets, serial: false };
        debug_assert_eq!(plan.verify(p), Ok(()), "SpreadPlan built an unsafe schedule");
        plan
    }

    /// Machine-check the independent-set schedule for this plan's geometry
    /// at spline order `p`: proves that no two same-parity blocks share a
    /// write footprint and that at least one spare cell separates them (see
    /// [`crate::verify`]). `new` runs this as a debug assertion; release
    /// callers can invoke it explicitly after changing block geometry.
    pub fn verify(&self, p: usize) -> Result<(), crate::verify::ScheduleViolation> {
        if self.serial {
            return Ok(());
        }
        crate::verify::verify_geometry(self.k, p, self.nb, self.bs)
    }

    /// Whether the serial fallback is active (mesh `< 4p` per dimension).
    pub fn is_serial(&self) -> bool {
        self.serial
    }

    /// Number of independent sets actually used.
    pub fn num_sets(&self) -> usize {
        if self.serial {
            1
        } else {
            8
        }
    }

    /// Blocks per dimension (0 in serial mode).
    pub fn blocks_per_dim(&self) -> usize {
        self.nb
    }

    /// Block side length in mesh cells (the `>= p` guarantee behind the
    /// independent-set disjointness argument).
    pub fn block_side(&self) -> usize {
        self.bs
    }

    /// Spread all three force components: `mesh` is `[F_x | F_y | F_z]`
    /// (each `K^3`, zero-initialized by this call), `f` is the interleaved
    /// force vector `[f_x0, f_y0, f_z0, f_x1, ...]` of length `3n`.
    #[hibd::hot]
    pub fn spread(&self, pm: &InterpMatrix, f: &[f64], mesh: &mut [f64]) {
        let k3 = self.k * self.k * self.k;
        assert_eq!(mesh.len(), 3 * k3);
        assert_eq!(f.len(), 3 * pm.mat.nrows());
        // Paper: "we explicitly set the result F_theta to zero before
        // beginning the spreading operation".
        mesh.par_chunks_mut(8192).for_each(|c| c.fill(0.0));

        if self.serial {
            scatter_rows(&self.members, pm, f, mesh, k3);
            return;
        }

        let ptr = MeshPtr(mesh.as_mut_ptr(), mesh.len());
        let ptr = &ptr; // capture the Sync wrapper, not the raw field
        for set in &self.sets {
            set.par_iter().for_each(|&b| {
                let rows = &self.members[self.start[b as usize]..self.start[b as usize + 1]];
                // SAFETY: blocks within one parity class have disjoint write
                // footprints (see module docs), classes run sequentially.
                let mesh = unsafe { std::slice::from_raw_parts_mut(ptr.0, ptr.1) };
                scatter_rows(rows, pm, f, mesh, k3);
            });
        }
    }

    /// Batched spreading for a chunk of `width` columns out of an `s`-column
    /// multi-RHS force block `f` (row-major `[dim][s]`, length `3n*s`):
    /// one pass over the P nonzeros serves every column. `mesh` holds
    /// `3*width` component meshes laid out `[theta][col]` — the mesh for
    /// component `theta` of chunk column `j` (global column `col0 + j`)
    /// starts at `(theta*width + j) * K^3`. Zero-initializes `mesh`.
    ///
    /// The independent-set schedule is unchanged: per-column write
    /// footprints are identical to the single-RHS case (same stencils, just
    /// `3*width` disjoint accumulator meshes per block), so the
    /// conflict-freedom proof in the module docs carries over verbatim.
    #[hibd::hot]
    pub fn spread_multi(
        &self,
        pm: &InterpMatrix,
        f: &[f64],
        s: usize,
        col0: usize,
        width: usize,
        mesh: &mut [f64],
    ) {
        let k3 = self.k * self.k * self.k;
        assert!(col0 + width <= s && width > 0, "column chunk out of range");
        assert_eq!(mesh.len(), 3 * width * k3);
        assert_eq!(f.len(), 3 * pm.mat.nrows() * s);
        mesh.par_chunks_mut(8192).for_each(|c| c.fill(0.0));

        let mesh_len = mesh.len();
        self.for_each_block_set(
            |rows, ptr| {
                // SAFETY: disjoint write footprints per the schedule above.
                let mesh = unsafe { std::slice::from_raw_parts_mut(ptr, mesh_len) };
                scatter_rows_multi(rows, pm, f, s, col0, width, mesh, k3);
            },
            mesh,
        );
    }

    /// Run `body(rows, mesh_ptr)` over every block, honoring the
    /// independent-set schedule: parity classes sequentially, blocks within
    /// a class in parallel. `body` receives the particle rows of one block
    /// and a raw pointer to the full mesh; it may write only the mesh cells
    /// covered by those rows' stencils (which the schedule guarantees are
    /// disjoint across concurrently running blocks).
    pub(crate) fn for_each_block_set(
        &self,
        body: impl Fn(&[u32], *mut f64) + Sync,
        mesh: &mut [f64],
    ) {
        if self.serial {
            body(&self.members, mesh.as_mut_ptr());
            return;
        }
        let ptr = MeshPtr(mesh.as_mut_ptr(), mesh.len());
        let ptr = &ptr; // capture the Sync wrapper, not the raw field
        for set in &self.sets {
            set.par_iter().for_each(|&b| {
                let rows = &self.members[self.start[b as usize]..self.start[b as usize + 1]];
                body(rows, ptr.0);
            });
        }
    }

    /// Reference serial spreading (used by tests and the correctness oracle).
    pub fn spread_serial(&self, pm: &InterpMatrix, f: &[f64], mesh: &mut [f64]) {
        let k3 = self.k * self.k * self.k;
        assert_eq!(mesh.len(), 3 * k3);
        mesh.fill(0.0);
        let all: Vec<u32> = (0..pm.mat.nrows() as u32).collect();
        scatter_rows(&all, pm, f, mesh, k3);
    }
}

/// Scatter the listed particle rows into the three component meshes.
#[hibd::hot]
fn scatter_rows(rows: &[u32], pm: &InterpMatrix, f: &[f64], mesh: &mut [f64], k3: usize) {
    let (mx, rest) = mesh.split_at_mut(k3);
    let (my, mz) = rest.split_at_mut(k3);
    for &r in rows {
        let r = r as usize;
        let (cols, vals) = pm.mat.row(r);
        let (fx, fy, fz) = (f[3 * r], f[3 * r + 1], f[3 * r + 2]);
        crate::simd::spread_row(pm.p, cols, vals, fx, fy, fz, mx, my, mz);
    }
}

/// Scatter the listed particle rows into `3*width` component meshes at once
/// (`[theta][col]` layout): the P row is read once per particle per column
/// tile and reused for every column in the tile, amortizing the index
/// traffic the per-column loop pays `s` times. The per-call working set is
/// a stack tile (this kernel runs inside the parallel scatter; a heap
/// buffer here would allocate once per block per apply).
#[allow(clippy::too_many_arguments)]
#[hibd::hot]
fn scatter_rows_multi(
    rows: &[u32],
    pm: &InterpMatrix,
    f: &[f64],
    s: usize,
    col0: usize,
    width: usize,
    mesh: &mut [f64],
    k3: usize,
) {
    let mut fvals = [0.0; 3 * COL_TILE];
    let mut j0 = 0;
    while j0 < width {
        let w = (width - j0).min(COL_TILE);
        for &r in rows {
            let r = r as usize;
            let (cols, vals) = pm.mat.row(r);
            for theta in 0..3 {
                let row = &f[(3 * r + theta) * s + col0 + j0..];
                fvals[theta * w..(theta + 1) * w].copy_from_slice(&row[..w]);
            }
            crate::simd::spread_row_multi(
                pm.p,
                cols,
                vals,
                &fvals[..3 * w],
                w,
                width,
                j0,
                k3,
                mesh,
            );
        }
        j0 += w;
    }
}

/// Interpolate the three velocity components back to the particles:
/// `u[3i + theta] = Σ_c P[i, c] mesh[theta * K^3 + c]` (paper Eq. 9).
/// Gather — no write conflicts, parallel over particles.
#[hibd::hot]
pub fn interpolate(pm: &InterpMatrix, mesh: &[f64], u: &mut [f64]) {
    let k3 = pm.k * pm.k * pm.k;
    assert_eq!(mesh.len(), 3 * k3);
    assert_eq!(u.len(), 3 * pm.mat.nrows());
    let (mx, rest) = mesh.split_at(k3);
    let (my, mz) = rest.split_at(k3);
    u.par_chunks_mut(3).enumerate().for_each(|(r, ur)| {
        let (cols, vals) = pm.mat.row(r);
        let [ax, ay, az] = crate::simd::interp_row(pm.p, cols, vals, mx, my, mz);
        ur[0] = ax;
        ur[1] = ay;
        ur[2] = az;
    });
}

/// Batched interpolation for a chunk of `width` columns: gathers from the
/// `3*width` component meshes (`[theta][col]` layout, matching
/// [`SpreadPlan::spread_multi`]) and **accumulates** into the multi-RHS
/// output `u` (row-major `[dim][s]`), i.e. `u[(3i+theta)*s + col0+j] +=
/// Σ_c P[i,c] mesh[(theta*width+j)*K^3 + c]`. Accumulating (instead of the
/// overwrite that single-RHS [`interpolate`] does) lets the reciprocal part
/// land directly on top of the real-space part with no add pass.
///
/// The per-particle accumulator is a stack tile of `3 * COL_TILE` lanes
/// (wider chunks loop over tiles, re-reading the P row per tile), so the
/// gather performs no heap allocation — rayon `for_each_init` scratch would
/// otherwise allocate once per work split on every apply.
#[hibd::hot]
pub fn interpolate_multi(
    pm: &InterpMatrix,
    mesh: &[f64],
    s: usize,
    col0: usize,
    width: usize,
    u: &mut [f64],
) {
    let k3 = pm.k * pm.k * pm.k;
    assert!(col0 + width <= s && width > 0, "column chunk out of range");
    assert_eq!(mesh.len(), 3 * width * k3);
    assert_eq!(u.len(), 3 * pm.mat.nrows() * s);
    u.par_chunks_mut(3 * s).enumerate().for_each(|(r, ur)| {
        let (cols, vals) = pm.mat.row(r);
        let mut acc = [0.0; 3 * COL_TILE];
        let mut j0 = 0;
        while j0 < width {
            let w = (width - j0).min(COL_TILE);
            acc[..3 * w].fill(0.0);
            crate::simd::interp_row_multi(
                pm.p,
                cols,
                vals,
                &mut acc[..3 * w],
                w,
                width,
                j0,
                k3,
                mesh,
            );
            for theta in 0..3 {
                for j in 0..w {
                    ur[theta * s + col0 + j0 + j] += acc[theta * w + j];
                }
            }
            j0 += w;
        }
    });
}

/// Raw mesh pointer made Sync for the independent-set scatter.
struct MeshPtr(*mut f64, usize);
// SAFETY: MeshPtr is only shared between rayon tasks of one parity class,
// whose write footprints are provably disjoint (module docs; machine-checked
// by `verify::verify_geometry` and the schedule proptests), and the classes
// run sequentially with a barrier between them.
unsafe impl Sync for MeshPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmat::build_interp_matrix;

    fn lcg_positions(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * box_l
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    fn lcg_forces(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (0..3 * n)
            .map(|_| {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn parallel_spreading_matches_serial() {
        for (n, k, p) in [(200usize, 32usize, 4usize), (100, 24, 6), (50, 16, 4)] {
            let box_l = 10.0;
            let pos = lcg_positions(n, box_l, n as u64);
            let pm = build_interp_matrix(&pos, box_l, k, p);
            let plan = SpreadPlan::new(&pm.scaled, k, p);
            assert!(!plan.is_serial(), "k={k} p={p} should run in parallel mode");
            let f = lcg_forces(n, 7);
            let k3 = k * k * k;
            let mut mesh_par = vec![0.0; 3 * k3];
            let mut mesh_ser = vec![1.0; 3 * k3]; // must be zeroed internally
            plan.spread(&pm, &f, &mut mesh_par);
            plan.spread_serial(&pm, &f, &mut mesh_ser);
            let maxd =
                mesh_par.iter().zip(&mesh_ser).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
            assert!(maxd < 1e-14, "(n={n},k={k},p={p}): {maxd}");
        }
    }

    #[test]
    fn serial_fallback_on_small_mesh() {
        let pos = lcg_positions(20, 5.0, 3);
        let pm = build_interp_matrix(&pos, 5.0, 8, 6); // 8 < 4*6
        let plan = SpreadPlan::new(&pm.scaled, 8, 6);
        assert!(plan.is_serial());
        let f = lcg_forces(20, 9);
        let mut a = vec![0.0; 3 * 512];
        let mut b = vec![0.0; 3 * 512];
        plan.spread(&pm, &f, &mut a);
        plan.spread_serial(&pm, &f, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn spreading_conserves_total_force() {
        // Column sums of P^T f equal sum of f per component (partition of
        // unity).
        let n = 80;
        let (k, p, box_l) = (20usize, 4usize, 10.0);
        let pos = lcg_positions(n, box_l, 5);
        let pm = build_interp_matrix(&pos, box_l, k, p);
        let plan = SpreadPlan::new(&pm.scaled, k, p);
        let f = lcg_forces(n, 13);
        let mut mesh = vec![0.0; 3 * k * k * k];
        plan.spread(&pm, &f, &mut mesh);
        let k3 = k * k * k;
        for theta in 0..3 {
            let mesh_total: f64 = mesh[theta * k3..(theta + 1) * k3].iter().sum();
            let force_total: f64 = (0..n).map(|i| f[3 * i + theta]).sum();
            assert!(
                (mesh_total - force_total).abs() < 1e-11,
                "theta={theta}: {mesh_total} vs {force_total}"
            );
        }
    }

    #[test]
    fn interpolation_is_transpose_of_spreading() {
        // <P^T f, g>_mesh == <f, P g>_particles for random f, g.
        let n = 60;
        let (k, p, box_l) = (16usize, 4usize, 8.0);
        let pos = lcg_positions(n, box_l, 11);
        let pm = build_interp_matrix(&pos, box_l, k, p);
        let plan = SpreadPlan::new(&pm.scaled, k, p);
        let f = lcg_forces(n, 17);
        let k3 = k * k * k;
        let g: Vec<f64> = lcg_forces(k3, 19); // 3*k3 values
        let mut mesh = vec![0.0; 3 * k3];
        plan.spread(&pm, &f, &mut mesh);
        let lhs: f64 = mesh.iter().zip(&g).map(|(a, b)| a * b).sum();
        let mut u = vec![0.0; 3 * n];
        interpolate(&pm, &g, &mut u);
        let rhs: f64 = f.iter().zip(&u).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-11 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn plans_verify_their_own_schedule() {
        for (k, p) in [(16usize, 4usize), (24, 6), (32, 8), (17, 4), (30, 4)] {
            let pos = lcg_positions(40, 10.0, (k + p) as u64);
            let pm = build_interp_matrix(&pos, 10.0, k, p);
            let plan = SpreadPlan::new(&pm.scaled, k, p);
            plan.verify(p).unwrap();
        }
    }

    #[test]
    fn multi_column_footprint_equals_single_rhs_footprint() {
        // The MeshPtr safety argument covers `spread_multi` only because
        // every column of a block writes the exact cell set the single-RHS
        // scatter writes. Pin that claim: scatter the same rows with unit
        // forces through both kernels and compare the nonzero cell sets of
        // every per-column component mesh against the single-RHS one.
        let (n, k, p, box_l, s) = (40usize, 16usize, 4usize, 8.0, 5usize);
        let pos = lcg_positions(n, box_l, 31);
        let pm = build_interp_matrix(&pos, box_l, k, p);
        let k3 = k * k * k;
        let rows: Vec<u32> = (0..n as u32).collect();
        let f1 = vec![1.0; 3 * n];
        let mut mesh1 = vec![0.0; 3 * k3];
        scatter_rows(&rows, &pm, &f1, &mut mesh1, k3);
        let fs = vec![1.0; 3 * n * s];
        let mut meshs = vec![0.0; 3 * s * k3];
        scatter_rows_multi(&rows, &pm, &fs, s, 0, s, &mut meshs, k3);
        for theta in 0..3 {
            let single = &mesh1[theta * k3..(theta + 1) * k3];
            for j in 0..s {
                let multi = &meshs[(theta * s + j) * k3..(theta * s + j + 1) * k3];
                for (c, (a, b)) in single.iter().zip(multi).enumerate() {
                    assert_eq!(
                        *a != 0.0,
                        *b != 0.0,
                        "footprints differ at theta={theta} col={j} cell={c}"
                    );
                }
            }
        }
    }

    #[test]
    fn interpolation_of_constant_field_returns_constant() {
        let n = 30;
        let (k, p, box_l) = (16usize, 6usize, 12.0);
        let pos = lcg_positions(n, box_l, 23);
        let pm = build_interp_matrix(&pos, box_l, k, p);
        let k3 = k * k * k;
        let mut mesh = vec![0.0; 3 * k3];
        mesh[..k3].fill(2.5); // x component constant
        mesh[2 * k3..].fill(-1.0); // z component constant
        let mut u = vec![0.0; 3 * n];
        interpolate(&pm, &mesh, &mut u);
        for i in 0..n {
            assert!((u[3 * i] - 2.5).abs() < 1e-12);
            assert!(u[3 * i + 1].abs() < 1e-12);
            assert!((u[3 * i + 2] + 1.0).abs() < 1e-12);
        }
    }
}
