//! Vectorized per-row spread/interpolate kernels (SoA lane processing).
//!
//! A `P` row holds `p^3` nonzeros ordered `(tx, ty, tz)` with `tz` fastest
//! ([`crate::pmat::fill_row`]), so each of the `p^2` groups of `p` entries
//! addresses **consecutive z cells** of the mesh — except for at most one
//! periodic wrap, and the wrap occurs at the same in-group offset for every
//! group of the row (the z stencil `(fz + tz) mod K` is shared). The AVX2
//! kernels exploit this: each group is split into at most two contiguous
//! runs, and every run is processed as unit-stride f64 lanes — a
//! broadcast·FMA scatter for spreading, a vector dot with one horizontal
//! reduction per output for interpolation. The multi-RHS variants reuse one
//! weight vector load across all `3*w` column lanes of the tile.
//!
//! Dispatch policy (see `hibd-simd`): the AVX2 path is taken for `p >= 4`
//! (shorter stencils never fill a 4-lane vector) when runtime detection
//! reports AVX2+FMA. The `*_scalar` twins preserve the pre-SIMD loops
//! operation-for-operation, so `HIBD_SIMD=off` reproduces the historical
//! scalar results bitwise.

use hibd_hot as hibd;

/// In-group offset of the periodic z wrap: the smallest `t in 1..p` with
/// `cols[t] != cols[t-1] + 1`, or 0 if the first group is one contiguous
/// run. Because every group of a row shares the same z stencil, the break
/// found in group 0 applies to all `p^2` groups.
#[inline]
pub(crate) fn zrun_break(p: usize, cols: &[u32]) -> usize {
    for t in 1..p {
        if cols[t] != cols[t - 1] + 1 {
            return t;
        }
    }
    0
}

/// Scatter one particle row into the three component meshes:
/// `m_theta[c] += w * f_theta` over the row's `p^3` nonzeros.
#[allow(clippy::too_many_arguments)]
#[hibd::hot]
pub(crate) fn spread_row(
    p: usize,
    cols: &[u32],
    vals: &[f64],
    fx: f64,
    fy: f64,
    fz: f64,
    mx: &mut [f64],
    my: &mut [f64],
    mz: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if p >= 4 && hibd_simd::avx2() {
        // SAFETY: `hibd_simd::avx2()` returns true only after runtime
        // detection of the avx2 and fma target features on this CPU.
        unsafe { spread_row_avx2(p, zrun_break(p, cols), cols, vals, fx, fy, fz, mx, my, mz) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
    spread_row_scalar(cols, vals, fx, fy, fz, mx, my, mz);
}

/// Gather one particle row from the three component meshes:
/// returns `[Σ w m_x[c], Σ w m_y[c], Σ w m_z[c]]`.
#[hibd::hot]
pub(crate) fn interp_row(
    p: usize,
    cols: &[u32],
    vals: &[f64],
    mx: &[f64],
    my: &[f64],
    mz: &[f64],
) -> [f64; 3] {
    #[cfg(target_arch = "x86_64")]
    if p >= 4 && hibd_simd::avx2() {
        // SAFETY: `hibd_simd::avx2()` returns true only after runtime
        // detection of the avx2 and fma target features on this CPU.
        return unsafe { interp_row_avx2(p, zrun_break(p, cols), cols, vals, mx, my, mz) };
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
    interp_row_scalar(cols, vals, mx, my, mz)
}

/// Scatter one particle row into `3*width` component meshes at once
/// (`[theta][col]` layout): `mesh[(theta*width + j0 + 0)*k3 .. ]` column `j`
/// of component `theta` gets `w * fvals[theta*w + j]` at each stencil cell.
/// `fvals` is the staged `3*w` force tile of this row.
#[allow(clippy::too_many_arguments)]
#[hibd::hot]
pub(crate) fn spread_row_multi(
    p: usize,
    cols: &[u32],
    vals: &[f64],
    fvals: &[f64],
    w: usize,
    width: usize,
    j0: usize,
    k3: usize,
    mesh: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if p >= 4 && hibd_simd::avx2() {
        // SAFETY: `hibd_simd::avx2()` returns true only after runtime
        // detection of the avx2 and fma target features on this CPU.
        unsafe {
            spread_row_multi_avx2(
                p,
                zrun_break(p, cols),
                cols,
                vals,
                fvals,
                w,
                width,
                j0,
                k3,
                mesh,
            );
        }
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
    spread_row_multi_scalar(cols, vals, fvals, w, width, j0, k3, mesh);
}

/// Gather one particle row from `3*width` component meshes at once into the
/// `3*w` accumulator tile `acc`, which must be zeroed on entry (the caller
/// adds the tile into the multi-RHS output).
#[allow(clippy::too_many_arguments)]
#[hibd::hot]
pub(crate) fn interp_row_multi(
    p: usize,
    cols: &[u32],
    vals: &[f64],
    acc: &mut [f64],
    w: usize,
    width: usize,
    j0: usize,
    k3: usize,
    mesh: &[f64],
) {
    #[cfg(target_arch = "x86_64")]
    if p >= 4 && hibd_simd::avx2() {
        // SAFETY: `hibd_simd::avx2()` returns true only after runtime
        // detection of the avx2 and fma target features on this CPU.
        unsafe {
            interp_row_multi_avx2(p, zrun_break(p, cols), cols, vals, acc, w, width, j0, k3, mesh);
        }
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
    interp_row_multi_scalar(cols, vals, acc, w, width, j0, k3, mesh);
}

/// Pre-SIMD single-RHS scatter loop, preserved bitwise.
#[allow(clippy::too_many_arguments)]
#[hibd::hot]
fn spread_row_scalar(
    cols: &[u32],
    vals: &[f64],
    fx: f64,
    fy: f64,
    fz: f64,
    mx: &mut [f64],
    my: &mut [f64],
    mz: &mut [f64],
) {
    for (c, w) in cols.iter().zip(vals) {
        let c = *c as usize;
        mx[c] += w * fx;
        my[c] += w * fy;
        mz[c] += w * fz;
    }
}

/// Pre-SIMD single-RHS gather loop, preserved bitwise.
#[hibd::hot]
fn interp_row_scalar(cols: &[u32], vals: &[f64], mx: &[f64], my: &[f64], mz: &[f64]) -> [f64; 3] {
    let (mut ax, mut ay, mut az) = (0.0, 0.0, 0.0);
    for (c, w) in cols.iter().zip(vals) {
        let c = *c as usize;
        ax += w * mx[c];
        ay += w * my[c];
        az += w * mz[c];
    }
    [ax, ay, az]
}

/// Pre-SIMD multi-RHS scatter loop, preserved bitwise.
#[allow(clippy::too_many_arguments)]
#[hibd::hot]
fn spread_row_multi_scalar(
    cols: &[u32],
    vals: &[f64],
    fvals: &[f64],
    w: usize,
    width: usize,
    j0: usize,
    k3: usize,
    mesh: &mut [f64],
) {
    for (c, wgt) in cols.iter().zip(vals) {
        let c = *c as usize;
        for theta in 0..3 {
            let base = (theta * width + j0) * k3 + c;
            for j in 0..w {
                mesh[base + j * k3] += wgt * fvals[theta * w + j];
            }
        }
    }
}

/// Pre-SIMD multi-RHS gather loop, preserved bitwise (`acc` is pre-zeroed
/// by the caller, matching the historical tile loop).
#[allow(clippy::too_many_arguments)]
#[hibd::hot]
fn interp_row_multi_scalar(
    cols: &[u32],
    vals: &[f64],
    acc: &mut [f64],
    w: usize,
    width: usize,
    j0: usize,
    k3: usize,
    mesh: &[f64],
) {
    for (c, wgt) in cols.iter().zip(vals) {
        let c = *c as usize;
        for theta in 0..3 {
            let base = (theta * width + j0) * k3 + c;
            for j in 0..w {
                acc[theta * w + j] += wgt * mesh[base + j * k3];
            }
        }
    }
}

/// Iterate the (at most two) contiguous z runs of every stencil group:
/// `$body(t, len)` with `t` the first nonzero index of the run and `len`
/// its length. `$zb` is the shared in-group wrap offset from [`zrun_break`].
#[cfg(target_arch = "x86_64")]
macro_rules! for_each_run {
    ($p:expr, $zb:expr, $cols:expr, |$t:ident, $len:ident| $body:block) => {{
        let l1 = if $zb == 0 { $p } else { $zb };
        for g in 0..$p * $p {
            let t0 = g * $p;
            {
                let ($t, $len) = (t0, l1);
                debug_assert_eq!($cols[$t + $len - 1] as usize, $cols[$t] as usize + $len - 1);
                $body
            }
            if $zb != 0 {
                let ($t, $len) = (t0 + $zb, $p - $zb);
                debug_assert_eq!($cols[$t + $len - 1] as usize, $cols[$t] as usize + $len - 1);
                $body
            }
        }
    }};
}

/// Horizontal sum of a 4-lane f64 register.
#[cfg(target_arch = "x86_64")]
macro_rules! hsum {
    ($v:expr) => {{
        let hi = _mm256_extractf128_pd::<1>($v);
        let lo = _mm256_castpd256_pd128($v);
        let s = _mm_add_pd(lo, hi);
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
    }};
}

/// AVX2+FMA single-RHS scatter: per contiguous z run,
/// `m_theta[c0..c0+len] += vals_run * f_theta` with broadcast FMA.
///
/// # Safety
/// The caller must ensure the CPU supports the `avx2` and `fma` target
/// features (runtime-detected via `hibd_simd::avx2()`).
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[hibd::hot]
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn spread_row_avx2(
    p: usize,
    zb: usize,
    cols: &[u32],
    vals: &[f64],
    fx: f64,
    fy: f64,
    fz: f64,
    mx: &mut [f64],
    my: &mut [f64],
    mz: &mut [f64],
) {
    use core::arch::x86_64::*;

    debug_assert_eq!(cols.len(), p * p * p);
    let vfx = _mm256_set1_pd(fx);
    let vfy = _mm256_set1_pd(fy);
    let vfz = _mm256_set1_pd(fz);
    let hfx = _mm256_castpd256_pd128(vfx);
    let hfy = _mm256_castpd256_pd128(vfy);
    let hfz = _mm256_castpd256_pd128(vfz);
    for_each_run!(p, zb, cols, |t, len| {
        let c0 = cols[t] as usize;
        debug_assert!(c0 + len <= mx.len());
        let mut i = 0;
        while i + 4 <= len {
            // SAFETY: `vals` has `p^3 = cols.len()` entries and
            // `t + i + 3 < t + len <= p^3`; the mesh accesses cover
            // `c0 + i .. c0 + i + 4 <= c0 + len <= K^3` because the run is
            // a contiguous column span (debug-asserted above, guaranteed by
            // the `fill_row` stencil order) and every column index is a
            // valid mesh cell.
            unsafe {
                let wv = _mm256_loadu_pd(vals.as_ptr().add(t + i));
                let px = mx.as_mut_ptr().add(c0 + i);
                let py = my.as_mut_ptr().add(c0 + i);
                let pz = mz.as_mut_ptr().add(c0 + i);
                _mm256_storeu_pd(px, _mm256_fmadd_pd(wv, vfx, _mm256_loadu_pd(px)));
                _mm256_storeu_pd(py, _mm256_fmadd_pd(wv, vfy, _mm256_loadu_pd(py)));
                _mm256_storeu_pd(pz, _mm256_fmadd_pd(wv, vfz, _mm256_loadu_pd(pz)));
            }
            i += 4;
        }
        if i + 2 <= len {
            // 2-lane tail: the common `p = 6` run is 4 + 2, and the split
            // runs of wrapped rows are 2 or 3 long, so this step is what
            // keeps shorter stencils vectorized at all.
            // SAFETY: same bounds argument as the 4-lane loop with a
            // 2-element footprint: `t + i + 1 < t + len <= p^3` and
            // `c0 + i + 2 <= c0 + len <= K^3`.
            unsafe {
                let wv = _mm_loadu_pd(vals.as_ptr().add(t + i));
                let px = mx.as_mut_ptr().add(c0 + i);
                let py = my.as_mut_ptr().add(c0 + i);
                let pz = mz.as_mut_ptr().add(c0 + i);
                _mm_storeu_pd(px, _mm_fmadd_pd(wv, hfx, _mm_loadu_pd(px)));
                _mm_storeu_pd(py, _mm_fmadd_pd(wv, hfy, _mm_loadu_pd(py)));
                _mm_storeu_pd(pz, _mm_fmadd_pd(wv, hfz, _mm_loadu_pd(pz)));
            }
            i += 2;
        }
        while i < len {
            let w = vals[t + i];
            let c = c0 + i;
            mx[c] = w.mul_add(fx, mx[c]);
            my[c] = w.mul_add(fy, my[c]);
            mz[c] = w.mul_add(fz, mz[c]);
            i += 1;
        }
    });
}

/// AVX2+FMA single-RHS gather: per contiguous z run, a vector dot of the
/// run weights against each component mesh; one horizontal reduction per
/// component at the end.
///
/// # Safety
/// The caller must ensure the CPU supports the `avx2` and `fma` target
/// features (runtime-detected via `hibd_simd::avx2()`).
#[cfg(target_arch = "x86_64")]
#[hibd::hot]
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn interp_row_avx2(
    p: usize,
    zb: usize,
    cols: &[u32],
    vals: &[f64],
    mx: &[f64],
    my: &[f64],
    mz: &[f64],
) -> [f64; 3] {
    use core::arch::x86_64::*;

    debug_assert_eq!(cols.len(), p * p * p);
    let mut vax = _mm256_setzero_pd();
    let mut vay = _mm256_setzero_pd();
    let mut vaz = _mm256_setzero_pd();
    let mut hax = _mm_setzero_pd();
    let mut hay = _mm_setzero_pd();
    let mut haz = _mm_setzero_pd();
    let (mut sax, mut say, mut saz) = (0.0, 0.0, 0.0);
    for_each_run!(p, zb, cols, |t, len| {
        let c0 = cols[t] as usize;
        debug_assert!(c0 + len <= mx.len());
        let mut i = 0;
        while i + 4 <= len {
            // SAFETY: same bounds argument as `spread_row_avx2`: the weight
            // lanes stay within the `p^3`-long row and the mesh lanes within
            // the contiguous run `c0 .. c0 + len <= K^3`.
            unsafe {
                let wv = _mm256_loadu_pd(vals.as_ptr().add(t + i));
                vax = _mm256_fmadd_pd(wv, _mm256_loadu_pd(mx.as_ptr().add(c0 + i)), vax);
                vay = _mm256_fmadd_pd(wv, _mm256_loadu_pd(my.as_ptr().add(c0 + i)), vay);
                vaz = _mm256_fmadd_pd(wv, _mm256_loadu_pd(mz.as_ptr().add(c0 + i)), vaz);
            }
            i += 4;
        }
        if i + 2 <= len {
            // 2-lane tail into separate 128-bit accumulators (see
            // `spread_row_avx2` — this is what vectorizes `p = 6` rows).
            // SAFETY: same bounds argument with a 2-element footprint.
            unsafe {
                let wv = _mm_loadu_pd(vals.as_ptr().add(t + i));
                hax = _mm_fmadd_pd(wv, _mm_loadu_pd(mx.as_ptr().add(c0 + i)), hax);
                hay = _mm_fmadd_pd(wv, _mm_loadu_pd(my.as_ptr().add(c0 + i)), hay);
                haz = _mm_fmadd_pd(wv, _mm_loadu_pd(mz.as_ptr().add(c0 + i)), haz);
            }
            i += 2;
        }
        while i < len {
            let w = vals[t + i];
            let c = c0 + i;
            sax = w.mul_add(mx[c], sax);
            say = w.mul_add(my[c], say);
            saz = w.mul_add(mz[c], saz);
            i += 1;
        }
    });
    let hsum2 = |h: __m128d| _mm_cvtsd_f64(_mm_add_sd(h, _mm_unpackhi_pd(h, h)));
    [sax + hsum2(hax) + hsum!(vax), say + hsum2(hay) + hsum!(vay), saz + hsum2(haz) + hsum!(vaz)]
}

/// AVX2+FMA multi-RHS scatter: the run weight vector is loaded once per
/// 4-lane chunk and reused across all `3*w` column meshes of the tile.
///
/// # Safety
/// The caller must ensure the CPU supports the `avx2` and `fma` target
/// features (runtime-detected via `hibd_simd::avx2()`).
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[hibd::hot]
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn spread_row_multi_avx2(
    p: usize,
    zb: usize,
    cols: &[u32],
    vals: &[f64],
    fvals: &[f64],
    w: usize,
    width: usize,
    j0: usize,
    k3: usize,
    mesh: &mut [f64],
) {
    use core::arch::x86_64::*;

    debug_assert_eq!(cols.len(), p * p * p);
    debug_assert!(3 * w <= fvals.len());
    for_each_run!(p, zb, cols, |t, len| {
        let c0 = cols[t] as usize;
        debug_assert!(c0 + len <= k3);
        let mut i = 0;
        while i + 4 <= len {
            // SAFETY: weight lanes stay within the `p^3`-long row; every
            // mesh access lands in `[(theta*width + j0 + j)*k3, ... + k3)`
            // at offsets `c0 + i .. c0 + i + 4 <= c0 + len <= k3` (the run
            // is a contiguous span of valid cells, debug-asserted above),
            // and `theta*width + j0 + j < 3*width` by the caller's tile
            // bounds, so the lane stays inside `mesh`.
            unsafe {
                let wv = _mm256_loadu_pd(vals.as_ptr().add(t + i));
                for theta in 0..3 {
                    let base0 = (theta * width + j0) * k3 + c0 + i;
                    for j in 0..w {
                        let fv = _mm256_set1_pd(fvals[theta * w + j]);
                        let pm = mesh.as_mut_ptr().add(base0 + j * k3);
                        _mm256_storeu_pd(pm, _mm256_fmadd_pd(wv, fv, _mm256_loadu_pd(pm)));
                    }
                }
            }
            i += 4;
        }
        if i + 2 <= len {
            // 2-lane tail (see `spread_row_avx2`): keeps `p = 6` rows and
            // the short split runs of wrapped rows vectorized.
            // SAFETY: same bounds argument with a 2-element footprint.
            unsafe {
                let wv = _mm_loadu_pd(vals.as_ptr().add(t + i));
                for theta in 0..3 {
                    let base0 = (theta * width + j0) * k3 + c0 + i;
                    for j in 0..w {
                        let fv = _mm_set1_pd(fvals[theta * w + j]);
                        let pm = mesh.as_mut_ptr().add(base0 + j * k3);
                        _mm_storeu_pd(pm, _mm_fmadd_pd(wv, fv, _mm_loadu_pd(pm)));
                    }
                }
            }
            i += 2;
        }
        while i < len {
            let wgt = vals[t + i];
            let c = c0 + i;
            for theta in 0..3 {
                let base = (theta * width + j0) * k3 + c;
                for j in 0..w {
                    mesh[base + j * k3] = wgt.mul_add(fvals[theta * w + j], mesh[base + j * k3]);
                }
            }
            i += 1;
        }
    });
}

/// AVX2+FMA multi-RHS gather: one vector dot per `(theta, j)` output lane
/// over the row's contiguous z runs, horizontal reduction per lane.
///
/// # Safety
/// The caller must ensure the CPU supports the `avx2` and `fma` target
/// features (runtime-detected via `hibd_simd::avx2()`).
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[hibd::hot]
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn interp_row_multi_avx2(
    p: usize,
    zb: usize,
    cols: &[u32],
    vals: &[f64],
    acc: &mut [f64],
    w: usize,
    width: usize,
    j0: usize,
    k3: usize,
    mesh: &[f64],
) {
    use core::arch::x86_64::*;

    debug_assert_eq!(cols.len(), p * p * p);
    for theta in 0..3 {
        for j in 0..w {
            let moff = (theta * width + j0 + j) * k3;
            let mut va = _mm256_setzero_pd();
            let mut ha = _mm_setzero_pd();
            let mut sa = 0.0;
            for_each_run!(p, zb, cols, |t, len| {
                let c0 = cols[t] as usize;
                debug_assert!(moff + c0 + len <= mesh.len());
                let mut i = 0;
                while i + 4 <= len {
                    // SAFETY: same bounds argument as `spread_row_multi_avx2`
                    // (contiguous run within one `k3`-long column mesh).
                    unsafe {
                        let wv = _mm256_loadu_pd(vals.as_ptr().add(t + i));
                        let mv = _mm256_loadu_pd(mesh.as_ptr().add(moff + c0 + i));
                        va = _mm256_fmadd_pd(wv, mv, va);
                    }
                    i += 4;
                }
                if i + 2 <= len {
                    // 2-lane tail (see `interp_row_avx2`).
                    // SAFETY: same bounds argument, 2-element footprint.
                    unsafe {
                        let wv = _mm_loadu_pd(vals.as_ptr().add(t + i));
                        let mv = _mm_loadu_pd(mesh.as_ptr().add(moff + c0 + i));
                        ha = _mm_fmadd_pd(wv, mv, ha);
                    }
                    i += 2;
                }
                while i < len {
                    sa = vals[t + i].mul_add(mesh[moff + c0 + i], sa);
                    i += 1;
                }
            });
            sa += _mm_cvtsd_f64(_mm_add_sd(ha, _mm_unpackhi_pd(ha, ha)));
            acc[theta * w + j] = sa + hsum!(va);
        }
    }
}
