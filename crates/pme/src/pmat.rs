//! Construction of the interpolation matrix `P` (paper Eq. 7, Sec. IV-B1).
//!
//! `P` is `n x K^3` with exactly `p^3` nonzeros per row: particle `i`'s row
//! holds the tensor-product B-spline weights
//! `W_p(u^x_i - k1) W_p(u^y_i - k2) W_p(u^z_i - k3)` over its `p x p x p`
//! stencil of mesh points (periodically wrapped). Because the same particle
//! configuration is reused across all Krylov iterations of a time step, `P`
//! is **precomputed once** and applied many times — the optimization
//! measured in Figure 4.

use crate::bspline::stencil;
use hibd_hot as hibd;
use hibd_mathx::Vec3;
use hibd_sparse::FixedCsr;
use rayon::prelude::*;

/// Maximum supported spline order, sized for the stack-allocated weight
/// buffers in [`fill_row`] and the on-the-fly kernels (`p = 8` is already
/// past the accuracy sweet spot of Table 2).
pub const MAX_ORDER: usize = 8;

/// The interpolation matrix plus the scaled coordinates it was built from.
#[derive(Clone, Debug)]
pub struct InterpMatrix {
    /// B-spline order.
    pub p: usize,
    /// Mesh dimension `K`.
    pub k: usize,
    /// `n x K^3` fixed-nnz CSR with `p^3` nonzeros per row.
    pub mat: FixedCsr,
    /// Scaled fractional coordinates `u = r K / L in [0, K)^3` per particle
    /// (kept for the on-the-fly variant and the spreading block map).
    pub scaled: Vec<Vec3>,
}

/// Compute scaled coordinates `u = wrap(r) * K / L`.
pub fn scale_positions(positions: &[Vec3], box_l: f64, k: usize) -> Vec<Vec3> {
    positions
        .iter()
        .map(|r| {
            let w = r.wrap_into_box(box_l);
            let mut u = w * (k as f64 / box_l);
            // Guard the u == K edge caused by rounding.
            for c in 0..3 {
                if u[c] >= k as f64 {
                    u[c] -= k as f64;
                }
            }
            u
        })
        .collect()
}

/// Build `P` for `positions` in a cubic box of side `box_l`, mesh `K`,
/// spline order `p`. Parallel over particles (paper Sec. IV-B1: row blocks).
pub fn build_interp_matrix(positions: &[Vec3], box_l: f64, k: usize, p: usize) -> InterpMatrix {
    assert!(p >= 2, "spline order must be >= 2");
    assert!(k >= p, "mesh must be at least as large as the stencil ({k} < {p})");
    let scaled = scale_positions(positions, box_l, k);
    let n = positions.len();
    let p3 = p * p * p;
    let mut mat = FixedCsr::zeros(n, k * k * k, p3);
    let (ind_rows, dat_rows) = mat.rows_mut();
    ind_rows.zip(dat_rows).zip(scaled.par_iter()).for_each(|((cols, vals), u)| {
        fill_row(u, k, p, cols, vals);
    });
    InterpMatrix { p, k, mat, scaled }
}

/// Fill one row: tensor-product weights over the wrapped p^3 stencil.
/// Weight buffers live on the stack (`p <= MAX_ORDER`): this runs once per
/// particle inside both the parallel matrix build and the on-the-fly
/// spread/interpolate kernels, where a heap buffer would be a per-particle
/// allocation.
#[hibd::hot]
pub fn fill_row(u: &Vec3, k: usize, p: usize, cols: &mut [u32], vals: &mut [f64]) {
    debug_assert_eq!(cols.len(), p * p * p);
    assert!(p <= MAX_ORDER, "spline order > {MAX_ORDER} not supported");
    let mut wx = [0.0; MAX_ORDER];
    let mut wy = [0.0; MAX_ORDER];
    let mut wz = [0.0; MAX_ORDER];
    let (wx, wy, wz) = (&mut wx[..p], &mut wy[..p], &mut wz[..p]);
    let fx = stencil(p, u.x, wx);
    let fy = stencil(p, u.y, wy);
    let fz = stencil(p, u.z, wz);
    let ki = k as i64;
    let mut t = 0;
    for (tx, wxv) in wx.iter().enumerate() {
        let ix = (fx + tx as i64).rem_euclid(ki) as usize;
        for (ty, wyv) in wy.iter().enumerate() {
            let iy = (fy + ty as i64).rem_euclid(ki) as usize;
            let wxy = wxv * wyv;
            for (tz, wzv) in wz.iter().enumerate() {
                let iz = (fz + tz as i64).rem_euclid(ki) as usize;
                cols[t] = ((ix * k + iy) * k + iz) as u32;
                vals[t] = wxy * wzv;
                t += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_positions(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * box_l
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    #[test]
    fn rows_sum_to_one() {
        // Partition of unity: interpolation of a constant field is exact.
        let pos = lcg_positions(40, 10.0, 1);
        let pm = build_interp_matrix(&pos, 10.0, 16, 4);
        for r in 0..40 {
            let (_, vals) = pm.mat.row(r);
            let s: f64 = vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row {r}: {s}");
        }
    }

    #[test]
    fn interpolates_linear_field_with_half_stencil_shift() {
        // B-spline quasi-interpolation of the linear field g(m) = m yields
        // u - p/2 (the spline is centered at p/2, and Σ_m m W_p(u-m)
        // = u - p/2). PME is insensitive to this fixed shift because the
        // Euler factors |b(k)|^2 absorb the corresponding phase; this test
        // pins the raw P behavior down so a regression in the stencil
        // offset convention is caught.
        let k = 16;
        let box_l = 8.0;
        let p = 4;
        let pos = vec![Vec3::new(2.25, 3.5, 0.5)];
        let pm = build_interp_matrix(&pos, box_l, k, p);
        let h = box_l / k as f64;
        let mut field = vec![0.0; k * k * k];
        for ix in 0..k {
            for iy in 0..k {
                for iz in 0..k {
                    field[(ix * k + iy) * k + iz] = ix as f64 * h;
                }
            }
        }
        let mut out = vec![0.0; 1];
        pm.mat.mul_vec(&field, &mut out);
        let want = 2.25 - (p as f64 / 2.0) * h;
        assert!((out[0] - want).abs() < 1e-12, "{} vs {want}", out[0]);
    }

    #[test]
    fn stencil_wraps_periodically() {
        // Particle near the origin must spread onto high-index mesh points.
        let k = 8;
        let pos = vec![Vec3::new(0.01, 0.01, 0.01)];
        let pm = build_interp_matrix(&pos, 8.0, k, 4);
        let (cols, vals) = pm.mat.row(0);
        let touches_high = cols.iter().any(|&c| {
            let ix = c as usize / (k * k);
            ix >= k - 3
        });
        assert!(touches_high, "cols {cols:?}");
        assert!((vals.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nnz_structure() {
        let pos = lcg_positions(10, 5.0, 2);
        let pm = build_interp_matrix(&pos, 5.0, 10, 6);
        assert_eq!(pm.mat.nnz_per_row(), 216);
        assert_eq!(pm.mat.nrows(), 10);
        assert_eq!(pm.mat.ncols(), 1000);
        // Memory model: 12 bytes per nonzero (8 value + 4 index).
        assert_eq!(pm.mat.memory_bytes(), 12 * 216 * 10);
    }

    #[test]
    fn scaled_coordinates_in_range() {
        let pos = vec![Vec3::new(-0.1, 10.0, 5.0), Vec3::new(9.999999999, 0.0, 20.0)];
        let scaled = scale_positions(&pos, 10.0, 16);
        for u in &scaled {
            for c in 0..3 {
                assert!(u[c] >= 0.0 && u[c] < 16.0, "{u:?}");
            }
        }
    }

    #[test]
    fn equivalent_positions_give_identical_rows() {
        let k = 12;
        let p = 4;
        let a = vec![Vec3::new(1.5, 2.5, 3.5)];
        let b = vec![Vec3::new(1.5 + 10.0, 2.5 - 10.0, 3.5)];
        let pa = build_interp_matrix(&a, 10.0, k, p);
        let pb = build_interp_matrix(&b, 10.0, k, p);
        assert_eq!(pa.mat.row(0).0, pb.mat.row(0).0);
        let (_, va) = pa.mat.row(0);
        let (_, vb) = pb.mat.row(0);
        for (x, y) in va.iter().zip(vb) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
