//! Machine-checked verification of the independent-set spreading schedule.
//!
//! [`SpreadPlan`](crate::spread::SpreadPlan) shares one raw mesh pointer
//! between rayon tasks (the `unsafe impl Sync for MeshPtr`), justified by a
//! geometric argument: blocks of the same parity class have disjoint write
//! footprints. This module turns that argument into code that either proves
//! the claim for a concrete `(K, p, nb, bs)` geometry or reports the exact
//! pair of blocks (and a witness cell) that breaks it.
//!
//! ## Reduction to one dimension
//!
//! A particle binned by cell `floor(u)` into block `b` writes the mesh cells
//! `[b_start - p + 1, b_end]` per dimension (wrapped mod `K`): the B-spline
//! stencil of a particle at cell `c` covers `[c - p + 1, c]`. A block's 3D
//! write footprint is therefore the tensor product of three per-dimension
//! circular intervals, and two footprints intersect iff their intervals
//! intersect in **every** dimension. Two distinct blocks of one parity class
//! share the per-dimension interval trivially in the dimensions where their
//! indices coincide, so a 3D conflict exists iff some pair of *distinct
//! same-parity indices along a single dimension* has intersecting intervals.
//! Checking all same-parity index pairs on the 1D ring is thus exact, not an
//! approximation.
//!
//! ## Two independent checkers
//!
//! [`verify_geometry`] decides disjointness analytically on circular
//! intervals; [`verify_geometry_exhaustive`] marks actual mesh cells and
//! compares the marks. The proptests in `tests/proptest_spread_schedule.rs`
//! drive both over random geometries and require identical verdicts, so a
//! bug in the interval arithmetic would have to be mirrored by a bug in the
//! cell simulation to slip through.
//!
//! ## The safety margin
//!
//! Disjointness alone holds down to `bs == p - 1`, where the footprints
//! touch without overlapping. The verifier demands one spare cell between
//! same-parity footprints (`bs >= p`), so a future off-by-one in the stencil
//! or binning cannot silently land on the exact boundary: `bs == p - 1` is
//! rejected as [`ScheduleViolation::NoSafetyMargin`], distinct from the hard
//! race at `bs <= p - 2` ([`ScheduleViolation::HardOverlap`]).

/// Why a block geometry is rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleViolation {
    /// An odd number of blocks per dimension: blocks `0` and `nb - 1` get
    /// the same parity yet are adjacent across the periodic seam, so the
    /// parity classes are not independent sets on the ring.
    OddBlockCount {
        /// Blocks per dimension.
        nb: usize,
    },
    /// Two same-parity blocks write a common cell — a data race under the
    /// parallel scatter.
    HardOverlap {
        /// Smaller block index along the dimension.
        i: usize,
        /// Larger block index along the dimension.
        j: usize,
        /// A mesh cell written by both blocks.
        cell: usize,
    },
    /// The footprints are disjoint but touch: no spare cell between them.
    /// Race-free today, but any off-by-one in the stencil would turn it
    /// into a race, so the verifier rejects it.
    NoSafetyMargin {
        /// Smaller block index along the dimension.
        i: usize,
        /// Larger block index along the dimension.
        j: usize,
        /// The boundary cell where the footprints meet.
        cell: usize,
    },
}

impl std::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleViolation::OddBlockCount { nb } => {
                write!(f, "odd block count {nb}: parity classes conflict at the periodic seam")
            }
            ScheduleViolation::HardOverlap { i, j, cell } => {
                write!(f, "blocks {i} and {j} (same parity) both write cell {cell}")
            }
            ScheduleViolation::NoSafetyMargin { i, j, cell } => {
                write!(f, "blocks {i} and {j} (same parity) touch at cell {cell} with no margin")
            }
        }
    }
}

/// Per-dimension write interval of block `i` as `(lo, len)` on the ring of
/// `k` cells: cells `lo, lo+1, ..., lo+len-1` (mod `k`). Block `i` owns the
/// cells `[i*bs, (i+1)*bs - 1]` — the last block absorbs the remainder up to
/// `k - 1` — and a particle at cell `c` writes `[c - p + 1, c]`.
fn write_interval(i: usize, k: usize, p: usize, nb: usize, bs: usize) -> (usize, usize) {
    let start = i * bs;
    let end = if i + 1 == nb { k - 1 } else { (i + 1) * bs - 1 };
    let lo = (start + k - (p - 1) % k) % k;
    (lo, end - start + p)
}

/// Relation between two circular intervals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Relation {
    /// Disjoint with at least one spare cell on both sides.
    Clear,
    /// Disjoint but adjacent at `cell` (the first cell of the later
    /// interval).
    Touching(usize),
    /// Share at least the witness `cell`.
    Overlapping(usize),
}

/// Analytic relation of `(a_lo, a_len)` and `(b_lo, b_len)` on a ring of
/// `k` cells.
fn relate(k: usize, (a_lo, a_len): (usize, usize), (b_lo, b_len): (usize, usize)) -> Relation {
    if a_len >= k {
        return Relation::Overlapping(b_lo);
    }
    if b_len >= k {
        return Relation::Overlapping(a_lo);
    }
    // b starts inside a, or a starts inside b.
    if (b_lo + k - a_lo) % k < a_len {
        return Relation::Overlapping(b_lo);
    }
    if (a_lo + k - b_lo) % k < b_len {
        return Relation::Overlapping(a_lo);
    }
    if (a_lo + a_len) % k == b_lo {
        return Relation::Touching(b_lo);
    }
    if (b_lo + b_len) % k == a_lo {
        return Relation::Touching(a_lo);
    }
    Relation::Clear
}

/// Prove (or refute) the independent-set schedule for a concrete geometry:
/// mesh dimension `k`, spline order `p`, `nb` blocks per dimension of side
/// `bs` (the last block absorbs the remainder). `nb == 0` denotes the
/// serial fallback, which is trivially race-free.
///
/// This is the analytic checker; [`verify_geometry_exhaustive`] is the
/// cell-marking ground truth the proptests compare it against.
pub fn verify_geometry(k: usize, p: usize, nb: usize, bs: usize) -> Result<(), ScheduleViolation> {
    if nb == 0 {
        return Ok(());
    }
    assert!(
        p >= 1 && bs >= 1 && nb * bs <= k,
        "inconsistent geometry (k={k} p={p} nb={nb} bs={bs})"
    );
    if nb % 2 == 1 {
        return Err(ScheduleViolation::OddBlockCount { nb });
    }
    for i in 0..nb {
        for j in i + 1..nb {
            if i % 2 != j % 2 {
                continue;
            }
            let a = write_interval(i, k, p, nb, bs);
            let b = write_interval(j, k, p, nb, bs);
            match relate(k, a, b) {
                Relation::Clear => {}
                Relation::Touching(cell) => {
                    return Err(ScheduleViolation::NoSafetyMargin { i, j, cell })
                }
                Relation::Overlapping(cell) => {
                    return Err(ScheduleViolation::HardOverlap { i, j, cell })
                }
            }
        }
    }
    Ok(())
}

/// Ground-truth version of [`verify_geometry`]: simulate every block's write
/// footprint cell by cell and compare the marks directly. `O(nb^2 k)` per
/// dimension — test-only speed, bit-for-bit trustworthy.
pub fn verify_geometry_exhaustive(
    k: usize,
    p: usize,
    nb: usize,
    bs: usize,
) -> Result<(), ScheduleViolation> {
    if nb == 0 {
        return Ok(());
    }
    assert!(
        p >= 1 && bs >= 1 && nb * bs <= k,
        "inconsistent geometry (k={k} p={p} nb={nb} bs={bs})"
    );
    if nb % 2 == 1 {
        return Err(ScheduleViolation::OddBlockCount { nb });
    }
    let footprint = |i: usize| -> Vec<bool> {
        let mut cells = vec![false; k];
        let (lo, len) = write_interval(i, k, p, nb, bs);
        for t in 0..len.min(k) {
            cells[(lo + t) % k] = true;
        }
        cells
    };
    for i in 0..nb {
        let fi = footprint(i);
        for j in i + 1..nb {
            if i % 2 != j % 2 {
                continue;
            }
            let fj = footprint(j);
            if let Some(cell) = (0..k).find(|&c| fi[c] && fj[c]) {
                return Err(ScheduleViolation::HardOverlap { i, j, cell });
            }
            if let Some(cell) = (0..k).find(|&c| fj[c] && (fi[(c + k - 1) % k] || fi[(c + 1) % k]))
            {
                return Err(ScheduleViolation::NoSafetyMargin { i, j, cell });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_geometries_pass() {
        // bs == p, the geometry SpreadPlan::new always builds.
        for (k, p) in [(16usize, 4usize), (24, 4), (32, 4), (24, 6), (36, 6), (32, 8), (17, 4)] {
            let bs = p;
            let nb = (k / bs) & !1;
            assert!(nb >= 2, "test geometry (k={k}, p={p}) fell into serial mode");
            verify_geometry(k, p, nb, bs).unwrap();
            verify_geometry_exhaustive(k, p, nb, bs).unwrap();
        }
    }

    #[test]
    fn serial_mode_is_trivially_safe() {
        verify_geometry(8, 6, 0, 6).unwrap();
        verify_geometry_exhaustive(8, 6, 0, 6).unwrap();
    }

    #[test]
    fn touching_footprints_are_rejected_as_margin_violation() {
        // bs == p - 1: provably race-free but with zero spare cells.
        let (k, p) = (24usize, 5usize);
        let bs = p - 1;
        let nb = 4;
        let err = verify_geometry(k, p, nb, bs).unwrap_err();
        assert!(matches!(err, ScheduleViolation::NoSafetyMargin { .. }), "{err:?}");
        let err = verify_geometry_exhaustive(k, p, nb, bs).unwrap_err();
        assert!(matches!(err, ScheduleViolation::NoSafetyMargin { .. }), "{err:?}");
    }

    #[test]
    fn overlapping_footprints_are_rejected_as_hard_overlap() {
        // bs <= p - 2: a genuine write race.
        let (k, p) = (24usize, 6usize);
        let bs = p - 2;
        let nb = 6;
        let err = verify_geometry(k, p, nb, bs).unwrap_err();
        assert!(matches!(err, ScheduleViolation::HardOverlap { .. }), "{err:?}");
        let err = verify_geometry_exhaustive(k, p, nb, bs).unwrap_err();
        assert!(matches!(err, ScheduleViolation::HardOverlap { .. }), "{err:?}");
    }

    #[test]
    fn odd_block_counts_are_rejected() {
        assert_eq!(verify_geometry(20, 4, 5, 4), Err(ScheduleViolation::OddBlockCount { nb: 5 }));
        assert_eq!(
            verify_geometry_exhaustive(20, 4, 5, 4),
            Err(ScheduleViolation::OddBlockCount { nb: 5 })
        );
    }

    #[test]
    fn odd_ring_genuinely_conflicts_at_the_seam() {
        // Why odd nb must be rejected: on a 5-block ring, blocks 0 and 4
        // share parity AND are neighbors across the periodic seam, so their
        // footprints truly intersect — the parity precheck is not merely a
        // convention.
        let (k, p, nb, bs) = (20usize, 4usize, 5usize, 4usize);
        let a = write_interval(0, k, p, nb, bs);
        let b = write_interval(nb - 1, k, p, nb, bs);
        assert!(matches!(relate(k, a, b), Relation::Overlapping(_)));
    }

    #[test]
    fn two_blocks_per_dimension_have_no_same_parity_pairs() {
        // nb == 2 puts every 3D block in its own parity class: the schedule
        // degenerates to fully sequential and is safe for any p.
        for p in [2usize, 4, 6, 8, 12] {
            verify_geometry(2 * p, p, 2, p).unwrap();
            verify_geometry_exhaustive(2 * p, p, 2, p).unwrap();
        }
    }

    #[test]
    fn oversized_last_block_is_handled() {
        // k not divisible by bs: the last block absorbs the remainder and
        // its (longer) footprint must still clear the seam.
        for (k, p) in [(19usize, 4usize), (27, 4), (29, 6), (39, 6)] {
            let bs = p;
            let nb = (k / bs) & !1;
            if nb < 2 {
                continue;
            }
            assert_eq!(verify_geometry(k, p, nb, bs), verify_geometry_exhaustive(k, p, nb, bs));
        }
    }

    #[test]
    fn relate_handles_wrapped_intervals() {
        // a wraps around the seam: [10, 11, 0, 1] on a ring of 12.
        assert_eq!(relate(12, (10, 4), (2, 2)), Relation::Touching(2));
        assert_eq!(relate(12, (10, 4), (1, 2)), Relation::Overlapping(1));
        assert_eq!(relate(12, (10, 4), (3, 2)), Relation::Clear);
        // Whole-ring interval overlaps everything.
        assert_eq!(relate(12, (0, 12), (5, 2)), Relation::Overlapping(5));
    }
}
