//! Real-space operator assembly (paper Section IV-C).
//!
//! With the Ewald parameter chosen so the real-space sum converges within
//! `r_max < L/2`, `M_real` is a sparse matrix of 3x3 RPY-Ewald tensors over
//! the neighbor pairs found by the cell list. It is applied many times per
//! time step (once per Krylov iteration, on a block of vectors), so it is
//! assembled once in BCSR form.
//!
//! The diagonal blocks are zero here: the self term `M_self = c I` is
//! applied separately as a scalar AXPY by the operator.

use hibd_cells::CellList;
use hibd_mathx::Vec3;
use hibd_rpy::{real_tensors_with_overlap4, RpyEwald};
use hibd_sparse::{Bcsr3, Bcsr3Builder};

/// Transpose a row-major 3x3 block.
#[inline]
fn transpose3(b: &[f64; 9]) -> [f64; 9] {
    [b[0], b[3], b[6], b[1], b[4], b[7], b[2], b[5], b[8]]
}

/// Assemble `M_real` for `positions` with cutoff `r_max` (must satisfy
/// `r_max <= L/2` so that at most the minimum image of each pair is inside
/// the cutoff). Includes the `r < 2a` overlap correction.
pub fn assemble_real_space(positions: &[Vec3], ewald: &RpyEwald, r_max: f64) -> Bcsr3 {
    assert!(
        r_max <= ewald.box_l / 2.0 + 1e-12,
        "r_max {r_max} must be <= L/2 = {}",
        ewald.box_l / 2.0
    );
    let n = positions.len();
    let cl = CellList::new(positions, ewald.box_l, r_max);
    let mut builder = Bcsr3Builder::new(n, n);
    // Buffer pairs and evaluate the Beenakker kernel four lanes at a time
    // (bitwise identical to the per-pair kernel); flush preserves pair
    // order, so the builder sees the exact historical push sequence.
    let mut pend: [(usize, usize, Vec3); 4] = [(0, 0, Vec3::ZERO); 4];
    let mut npend = 0;
    let mut tensors = [[0.0; 9]; 4];
    cl.for_each_pair(|i, j, dr, _r2| {
        pend[npend] = (i, j, dr);
        npend += 1;
        if npend == 4 {
            let rv = [pend[0].2, pend[1].2, pend[2].2, pend[3].2];
            real_tensors_with_overlap4(ewald, &rv, &mut tensors);
            for (&(i, j, _), t) in pend.iter().zip(&tensors) {
                builder.push(i, j, *t);
                builder.push(j, i, transpose3(t));
            }
            npend = 0;
        }
    });
    for &(i, j, dr) in &pend[..npend] {
        let t = ewald.real_tensor_with_overlap(dr);
        builder.push(i, j, t);
        builder.push(j, i, transpose3(&t));
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hibd_linalg::DMat;

    fn lcg_positions(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * box_l
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    #[test]
    fn matrix_is_symmetric() {
        let pos = lcg_positions(30, 10.0, 1);
        let ewald = RpyEwald::new(1.0, 1.0, 10.0, 0.8, 1e-8);
        let m = assemble_real_space(&pos, &ewald, 4.0);
        let d = DMat::from_vec(90, 90, m.to_dense());
        assert!(d.max_asymmetry() < 1e-14, "{}", d.max_asymmetry());
    }

    #[test]
    fn matches_pairwise_reference() {
        // Every stored block equals the direct kernel evaluation of its
        // minimum-image pair, and every in-cutoff pair is present.
        let box_l = 12.0;
        let pos = lcg_positions(20, box_l, 5);
        let ewald = RpyEwald::new(1.0, 1.0, box_l, 0.7, 1e-8);
        let r_max = 5.0;
        let m = assemble_real_space(&pos, &ewald, r_max);
        let dense = m.to_dense();
        let nc = 60;
        for i in 0..20 {
            for j in 0..20 {
                if i == j {
                    // Diagonal blocks must be zero (self term applied
                    // separately).
                    for bi in 0..3 {
                        for bj in 0..3 {
                            assert_eq!(dense[(3 * i + bi) * nc + 3 * j + bj], 0.0);
                        }
                    }
                    continue;
                }
                let dr = (pos[i] - pos[j]).min_image(box_l);
                let want: [f64; 9] =
                    if dr.norm() <= r_max { ewald.real_tensor_with_overlap(dr) } else { [0.0; 9] };
                for bi in 0..3 {
                    for bj in 0..3 {
                        let got = dense[(3 * i + bi) * nc + 3 * j + bj];
                        assert!(
                            (got - want[3 * bi + bj]).abs() < 1e-14,
                            "pair ({i},{j}) entry ({bi},{bj})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn overlapping_pair_uses_regularized_tensor() {
        let box_l = 10.0;
        let pos = vec![Vec3::new(1.0, 1.0, 1.0), Vec3::new(2.2, 1.0, 1.0)]; // r = 1.2 < 2a
        let ewald = RpyEwald::new(1.0, 1.0, box_l, 0.8, 1e-8);
        let m = assemble_real_space(&pos, &ewald, 4.0);
        let dense = m.to_dense();
        let dr = (pos[0] - pos[1]).min_image(box_l);
        let want = ewald.real_tensor_with_overlap(dr);
        // xx entry of block (0, 1)
        assert!((dense[3] - want[0]).abs() < 1e-15);
        // Must differ from the non-corrected kernel.
        let bare = ewald.real_tensor(dr);
        assert!((want[0] - bare[0]).abs() > 1e-6);
    }

    #[test]
    #[should_panic]
    fn rejects_cutoff_beyond_half_box() {
        let pos = lcg_positions(5, 8.0, 2);
        let ewald = RpyEwald::new(1.0, 1.0, 8.0, 0.8, 1e-8);
        assemble_real_space(&pos, &ewald, 5.0);
    }
}
