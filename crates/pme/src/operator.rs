//! The assembled PME mobility operator (paper Algorithm 2, line 4).
//!
//! The operator is split along the setup/state axis:
//!
//! * [`PmePlans`] holds the **position-independent** setup artifacts — the
//!   Ewald kernel, FFT plans, influence table, and self-mobility
//!   coefficient. They depend only on [`PmeParams`], live behind an `Arc`,
//!   and are shared across lambda-windows of one trajectory and across
//!   replicas of an ensemble (`hibd-engine`'s `PlanCache` deduplicates them
//!   by shape key).
//! * `PmeOperator` adds the **position-dependent** per-configuration
//!   artifacts (interpolation matrix `P`, spreading schedule, real-space
//!   BCSR matrix) plus the mutable per-job scratch (`PmeState`: meshes,
//!   spectra, batch buffers, phase times). `apply` then evaluates `u = M f`
//!   with no further setup — the property that makes the operator cheap to
//!   use inside the Krylov iteration.
//!
//! Wall-clock time of each reciprocal phase is accumulated into
//! [`PmePhaseTimes`], which the Figure 5 harness reads. Each phase is timed
//! with a [`hibd_telemetry`] stopwatch, so the same spans feed the global
//! recorder (phase histograms, the calibrated Section IV-D model) whenever
//! telemetry is enabled — the per-instance struct is a thin local view.

use crate::influence::Influence;
use crate::pmat::{build_interp_matrix, InterpMatrix};
use crate::real::assemble_real_space;
use crate::spread::{interpolate, interpolate_multi, SpreadPlan};
use hibd_fft::{Complex64, Fft3, FftError};
use hibd_hot as hibd;
use hibd_linalg::LinearOperator;
use hibd_mathx::Vec3;
use hibd_rpy::RpyEwald;
use hibd_sparse::Bcsr3;
use hibd_telemetry::{self as telemetry, Counter, Phase};
use std::sync::Arc;

/// PME discretization parameters (one row of the paper's Table III).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PmeParams {
    /// Particle radius.
    pub a: f64,
    /// Fluid viscosity.
    pub eta: f64,
    /// Cubic box side `L`.
    pub box_l: f64,
    /// Ewald splitting parameter (the paper's `alpha`).
    pub alpha: f64,
    /// FFT mesh dimension `K` (`K^3` points; must be even and 16-smooth).
    pub mesh_dim: usize,
    /// Cardinal B-spline order `p`.
    pub spline_order: usize,
    /// Real-space cutoff `r_max` (`<= L/2`).
    pub r_max: f64,
}

impl Default for PmeParams {
    fn default() -> Self {
        PmeParams {
            a: 1.0,
            eta: 1.0,
            box_l: 10.0,
            alpha: 0.8,
            mesh_dim: 32,
            spline_order: 4,
            r_max: 4.0,
        }
    }
}

/// Accumulated wall-clock seconds per pipeline phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct PmePhaseTimes {
    pub spreading: f64,
    pub forward_fft: f64,
    pub influence: f64,
    pub inverse_fft: f64,
    pub interpolation: f64,
    pub real_space: f64,
    /// Number of `apply` calls accumulated.
    pub applications: usize,
}

impl PmePhaseTimes {
    /// Total reciprocal-space time.
    pub fn recip_total(&self) -> f64 {
        self.spreading + self.forward_fft + self.influence + self.inverse_fft + self.interpolation
    }

    pub fn total(&self) -> f64 {
        self.recip_total() + self.real_space
    }
}

/// Position-independent PME setup artifacts, shareable across operators.
///
/// Everything in here is a pure function of [`PmeParams`]: the Beenakker
/// Ewald kernel, the `K^3` FFT plans, the influence-function scalar table
/// (the dominant setup cost, `O(K^3)` `erfc` evaluations), and the
/// self-mobility coefficient. A standalone driver builds one `PmePlans` and
/// reuses it across every lambda-window rebuild; the ensemble engine shares
/// one across all replicas of the same shape.
pub struct PmePlans {
    params: PmeParams,
    ewald: RpyEwald,
    fft: Fft3,
    inf: Influence,
    self_coef: f64,
}

impl PmePlans {
    /// Build the shareable setup for a parameter set. The only failure mode
    /// is an FFT-unfriendly mesh dimension.
    pub fn new(params: PmeParams) -> Result<PmePlans, FftError> {
        let k = params.mesh_dim;
        let ewald = RpyEwald::kernel_only(params.a, params.eta, params.box_l, params.alpha);
        let fft = Fft3::new([k, k, k])?;
        let inf = Influence::new(&ewald, k, params.spline_order);
        let self_coef = ewald.self_coefficient();
        Ok(PmePlans { params, ewald, fft, inf, self_coef })
    }

    pub fn params(&self) -> &PmeParams {
        &self.params
    }

    /// The Ewald kernel the influence table was built from.
    pub fn ewald(&self) -> &RpyEwald {
        &self.ewald
    }

    /// The shared `K^3` FFT plans (all methods take `&self`).
    pub fn fft(&self) -> &Fft3 {
        &self.fft
    }

    /// The influence-function table.
    pub fn influence(&self) -> &Influence {
        &self.inf
    }

    /// Self-mobility coefficient added on the real-space branch.
    pub fn self_coefficient(&self) -> f64 {
        self.self_coef
    }

    /// Resident bytes of the shared artifacts (the influence table; the FFT
    /// twiddle storage is a few lines per axis and is not accounted).
    pub fn memory_bytes(&self) -> usize {
        self.inf.memory_bytes()
    }
}

/// Mutable per-job state: meshes, spectra, per-column and batch scratch,
/// and the accumulated phase times. Owned by exactly one `PmeOperator`;
/// never shared.
struct PmeState {
    /// `[F_x | F_y | F_z]` real meshes, each `K^3`.
    mesh: Vec<f64>,
    /// `[C_x | C_y | C_z]` half spectra, each `K^2 (K/2+1)`.
    spec: Vec<Complex64>,
    /// Single-RHS interpolation / reciprocal-output scratch (`3n`).
    interp_scratch: Vec<f64>,
    /// Real-branch output scratch for `apply_overlapped` (`3n`).
    real_scratch: Vec<f64>,
    /// Column gather/scatter scratch for the per-column baseline (`6n`).
    col_scratch: Vec<f64>,
    /// Batched meshes for `recip_apply_add_cols`: `3*width` meshes of `K^3`
    /// in `[theta][col]` layout. Grown on demand, never shrunk, so repeated
    /// block applies at the same width are allocation-free.
    batch_mesh: Vec<f64>,
    /// Batched half spectra, `3*width` of `K^2 (K/2+1)` each.
    batch_spec: Vec<Complex64>,
    times: PmePhaseTimes,
}

/// The matrix-free periodic RPY mobility operator.
///
/// ```
/// use hibd_mathx::Vec3;
/// use hibd_pme::{PmeOperator, PmeParams};
/// use hibd_linalg::LinearOperator;
///
/// let positions = vec![
///     Vec3::new(1.0, 2.0, 3.0),
///     Vec3::new(6.0, 5.0, 4.0),
///     Vec3::new(3.0, 8.0, 7.5),
/// ];
/// let params = PmeParams::default(); // L = 10, K = 32, p = 4
/// let mut op = PmeOperator::new(&positions, params).unwrap();
///
/// // u = M f: velocities induced by forces through the fluid.
/// let f = vec![1.0, 0.0, 0.0,  0.0, 0.0, 0.0,  0.0, 0.0, 0.0];
/// let mut u = vec![0.0; 9];
/// op.apply(&f, &mut u);
/// assert!(u[0] > 0.0, "forced particle moves along the force");
/// assert!(u[3].abs() > 0.0, "other particles are dragged along");
/// ```
pub struct PmeOperator {
    plans: Arc<PmePlans>,
    n: usize,
    pm: InterpMatrix,
    plan: SpreadPlan,
    real: Bcsr3,
    state: PmeState,
}

impl PmeOperator {
    /// Build the operator for a particle configuration (Algorithm 2 line 4:
    /// "Construct PME operator using r_k"), including its own plans.
    pub fn new(positions: &[Vec3], params: PmeParams) -> Result<PmeOperator, FftError> {
        Ok(Self::with_plans(positions, Arc::new(PmePlans::new(params)?)))
    }

    /// Build the position-dependent part of the operator on top of shared
    /// plans — the per-window / per-replica construction path. Infallible:
    /// the FFT plans already exist.
    pub fn with_plans(positions: &[Vec3], plans: Arc<PmePlans>) -> PmeOperator {
        let k = plans.params.mesh_dim;
        let p = plans.params.spline_order;
        let pm = build_interp_matrix(positions, plans.params.box_l, k, p);
        let plan = SpreadPlan::new(&pm.scaled, k, p);
        let real = assemble_real_space(positions, &plans.ewald, plans.params.r_max);
        let k3 = k * k * k;
        let s_len = k * k * (k / 2 + 1);
        let op = PmeOperator {
            plans,
            n: positions.len(),
            pm,
            plan,
            real,
            state: PmeState {
                mesh: vec![0.0; 3 * k3],
                spec: vec![Complex64::ZERO; 3 * s_len],
                interp_scratch: vec![0.0; 3 * positions.len()],
                real_scratch: vec![0.0; 3 * positions.len()],
                col_scratch: vec![0.0; 6 * positions.len()],
                batch_mesh: Vec::new(),
                batch_spec: Vec::new(),
                times: PmePhaseTimes::default(),
            },
        };
        if telemetry::enabled() {
            telemetry::gauge_max(Counter::PmeScratchBytes, op.memory_bytes() as u64);
        }
        op
    }

    /// Number of particles.
    pub fn num_particles(&self) -> usize {
        self.n
    }

    pub fn params(&self) -> &PmeParams {
        &self.plans.params
    }

    /// The shared setup artifacts backing this operator.
    pub fn plans(&self) -> &Arc<PmePlans> {
        &self.plans
    }

    /// The Ewald kernel in use.
    pub fn ewald(&self) -> &RpyEwald {
        &self.plans.ewald
    }

    /// The interpolation matrix (for the Figure 4 comparison and tests).
    pub fn interp_matrix(&self) -> &InterpMatrix {
        &self.pm
    }

    /// The spreading plan.
    pub fn spread_plan(&self) -> &SpreadPlan {
        &self.plan
    }

    /// The real-space BCSR operator.
    pub fn real_matrix(&self) -> &Bcsr3 {
        &self.real
    }

    /// Reset and return accumulated phase timings.
    pub fn take_times(&mut self) -> PmePhaseTimes {
        std::mem::take(&mut self.state.times)
    }

    /// Estimated resident bytes of the operator (paper Eq. 11 plus the
    /// real-space matrix): meshes + spectra (including the grown batch
    /// scratch) + particle scratch + P + influence + BCSR. Counts the
    /// shared plans in full — this is the standalone footprint; an ensemble
    /// sums [`PmeOperator::state_memory_bytes`] and counts each distinct
    /// [`PmePlans`] once.
    pub fn memory_bytes(&self) -> usize {
        self.state_memory_bytes() + self.plans.memory_bytes()
    }

    /// Resident bytes of the per-job part only (everything except the
    /// shared [`PmePlans`]).
    pub fn state_memory_bytes(&self) -> usize {
        (self.state.mesh.len() + self.state.batch_mesh.len()) * 8
            + (self.state.spec.len() + self.state.batch_spec.len()) * 16
            + (self.state.interp_scratch.len()
                + self.state.real_scratch.len()
                + self.state.col_scratch.len())
                * 8
            + self.pm.mat.memory_bytes()
            + self.real.memory_bytes()
    }

    /// `u += M_recip f` — the six-step reciprocal pipeline.
    #[hibd::hot]
    pub fn recip_apply_add(&mut self, f: &[f64], u: &mut [f64]) {
        assert_eq!(f.len(), 3 * self.n);
        assert_eq!(u.len(), 3 * self.n);
        let k = self.plans.params.mesh_dim;
        let k3 = k * k * k;
        let s_len = k * k * (k / 2 + 1);
        let st = &mut self.state;

        let sw = telemetry::start(Phase::Spreading);
        self.plan.spread(&self.pm, f, &mut st.mesh);
        st.times.spreading += sw.stop();
        let sw = telemetry::start(Phase::ForwardFft);
        for theta in 0..3 {
            self.plans.fft.forward(
                &st.mesh[theta * k3..(theta + 1) * k3],
                &mut st.spec[theta * s_len..(theta + 1) * s_len],
            );
        }
        st.times.forward_fft += sw.stop();
        let sw = telemetry::start(Phase::Influence);
        self.plans.inf.apply(&mut st.spec);
        st.times.influence += sw.stop();
        let sw = telemetry::start(Phase::InverseFft);
        for theta in 0..3 {
            self.plans.fft.inverse(
                &mut st.spec[theta * s_len..(theta + 1) * s_len],
                &mut st.mesh[theta * k3..(theta + 1) * k3],
            );
        }
        st.times.inverse_fft += sw.stop();
        let sw = telemetry::start(Phase::Interpolation);
        // Interpolate into operator-owned scratch, then accumulate
        // (interpolate overwrites; no per-apply allocation).
        interpolate(&self.pm, &st.mesh, &mut st.interp_scratch);
        for (o, v) in u.iter_mut().zip(&st.interp_scratch) {
            *o += v;
        }
        st.times.interpolation += sw.stop();
    }

    /// Spread `f` through this operator's `P` into a caller-provided
    /// `[F_x | F_y | F_z]` mesh triple (`3 K^3`). Exactly the spreading
    /// stage of [`PmeOperator::recip_apply_add`], exposed so the ensemble
    /// engine can run many replicas' meshes through one batched FFT — the
    /// bitwise contract with the standalone path follows from calling the
    /// identical kernel.
    #[hibd::hot]
    pub fn spread_forces(&mut self, f: &[f64], mesh: &mut [f64]) {
        assert_eq!(f.len(), 3 * self.n);
        let k = self.plans.params.mesh_dim;
        assert_eq!(mesh.len(), 3 * k * k * k);
        let sw = telemetry::start(Phase::Spreading);
        self.plan.spread(&self.pm, f, mesh);
        self.state.times.spreading += sw.stop();
    }

    /// `u += P^T mesh` from a caller-provided mesh triple — the
    /// interpolation stage of [`PmeOperator::recip_apply_add`], exposed for
    /// the ensemble engine (same kernel, same accumulate-into-`u` tail).
    #[hibd::hot]
    pub fn interpolate_add(&mut self, mesh: &[f64], u: &mut [f64]) {
        assert_eq!(u.len(), 3 * self.n);
        let k = self.plans.params.mesh_dim;
        assert_eq!(mesh.len(), 3 * k * k * k);
        let sw = telemetry::start(Phase::Interpolation);
        interpolate(&self.pm, mesh, &mut self.state.interp_scratch);
        for (o, v) in u.iter_mut().zip(&self.state.interp_scratch) {
            *o += v;
        }
        self.state.times.interpolation += sw.stop();
    }

    /// Hand out this operator's batch mesh/spectrum scratch, grown to
    /// `width` mesh triples, for an external batched pipeline (the
    /// ensemble engine funnels a whole replica group through one member's
    /// scratch instead of allocating its own). Returns `(mesh, spec)`
    /// sized at least `3 * width * K^3` reals / `3 * width * K^2 (K/2+1)`
    /// complexes; no allocation at steady state. The scratch must come
    /// back via [`restore_batch_scratch`](Self::restore_batch_scratch)
    /// before the next multi-RHS apply on this operator.
    pub fn take_batch_scratch(&mut self, width: usize) -> (Vec<f64>, Vec<Complex64>) {
        self.ensure_batch_scratch(width);
        (std::mem::take(&mut self.state.batch_mesh), std::mem::take(&mut self.state.batch_spec))
    }

    /// Return scratch taken with
    /// [`take_batch_scratch`](Self::take_batch_scratch).
    pub fn restore_batch_scratch(&mut self, mesh: Vec<f64>, spec: Vec<Complex64>) {
        self.state.batch_mesh = mesh;
        self.state.batch_spec = spec;
    }

    /// `u += M_recip f` recomputing the B-spline weights on the fly instead
    /// of reading the precomputed `P` — the Figure 4 baseline. Timing is
    /// accumulated into the same phase counters.
    #[hibd::hot]
    pub fn recip_apply_add_on_the_fly(&mut self, f: &[f64], u: &mut [f64]) {
        assert_eq!(f.len(), 3 * self.n);
        assert_eq!(u.len(), 3 * self.n);
        let k = self.plans.params.mesh_dim;
        let k3 = k * k * k;
        let s_len = k * k * (k / 2 + 1);
        let st = &mut self.state;

        let sw = telemetry::start(Phase::Spreading);
        crate::onthefly::spread_on_the_fly(&self.plan, &self.pm, f, &mut st.mesh);
        st.times.spreading += sw.stop();
        let sw = telemetry::start(Phase::ForwardFft);
        for theta in 0..3 {
            self.plans.fft.forward(
                &st.mesh[theta * k3..(theta + 1) * k3],
                &mut st.spec[theta * s_len..(theta + 1) * s_len],
            );
        }
        st.times.forward_fft += sw.stop();
        let sw = telemetry::start(Phase::Influence);
        self.plans.inf.apply(&mut st.spec);
        st.times.influence += sw.stop();
        let sw = telemetry::start(Phase::InverseFft);
        for theta in 0..3 {
            self.plans.fft.inverse(
                &mut st.spec[theta * s_len..(theta + 1) * s_len],
                &mut st.mesh[theta * k3..(theta + 1) * k3],
            );
        }
        st.times.inverse_fft += sw.stop();
        let sw = telemetry::start(Phase::Interpolation);
        crate::onthefly::interpolate_on_the_fly(&self.pm, &st.mesh, &mut st.interp_scratch);
        for (o, v) in u.iter_mut().zip(&st.interp_scratch) {
            *o += v;
        }
        st.times.interpolation += sw.stop();
    }

    /// `u = (M_real + M_self) f` — the short-range part.
    #[hibd::hot]
    pub fn real_apply(&mut self, f: &[f64], u: &mut [f64]) {
        let sw = telemetry::start(Phase::RealSpace);
        self.real.mul_vec(f, u);
        for (o, v) in u.iter_mut().zip(f) {
            *o += self.plans.self_coef * v;
        }
        self.state.times.real_space += sw.stop();
    }

    /// Multi-RHS real part: `U = (M_real + M_self) F` for row-major
    /// `[3n][s]` blocks (BCSR SpMM, paper ref. \[24\]).
    #[hibd::hot]
    pub fn real_apply_multi(&mut self, f: &[f64], u: &mut [f64], s: usize) {
        let sw = telemetry::start(Phase::RealSpace);
        self.real.mul_multi(f, u, s);
        for (o, v) in u.iter_mut().zip(f) {
            *o += self.plans.self_coef * v;
        }
        self.state.times.real_space += sw.stop();
    }

    /// `u = PME(f)` with the real-space and reciprocal-space parts computed
    /// **concurrently** (the paper's hybrid scheme, Section IV-E: "the
    /// real-space terms and the reciprocal-space terms can be computed
    /// concurrently"). Returns `(t_real, t_recip)` wall-clock seconds of the
    /// two branches, which the hybrid load balancer consumes.
    pub fn apply_overlapped(&mut self, f: &[f64], u: &mut [f64]) -> (f64, f64) {
        assert_eq!(f.len(), 3 * self.n);
        assert_eq!(u.len(), 3 * self.n);
        // Split borrows: the real branch only reads `real`/`self_coef`;
        // the reciprocal branch mutates the meshes and spectra.
        let real = &self.real;
        let self_coef = self.plans.self_coef;
        let plan = &self.plan;
        let pm = &self.pm;
        let fft = &self.plans.fft;
        let inf = &self.plans.inf;
        let mesh = &mut self.state.mesh;
        let spec = &mut self.state.spec;
        let u_real = &mut self.state.real_scratch;
        let u_recip = &mut self.state.interp_scratch;
        let k = self.plans.params.mesh_dim;
        let k3 = k * k * k;
        let s_len = k * k * (k / 2 + 1);

        let mut t_real = 0.0;
        // Per-phase wall clock of the reciprocal branch, so the Fig. 5
        // breakdown stays correct when the overlapped path is used.
        let mut phases = [0.0f64; 5];
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let sw = telemetry::start(Phase::RealSpace);
                real.mul_vec(f, u_real);
                for (o, v) in u_real.iter_mut().zip(f) {
                    *o += self_coef * v;
                }
                sw.stop()
            });
            let sw = telemetry::start(Phase::Spreading);
            plan.spread(pm, f, mesh);
            let t_spread = sw.stop();
            let sw = telemetry::start(Phase::ForwardFft);
            for theta in 0..3 {
                fft.forward(
                    &mesh[theta * k3..(theta + 1) * k3],
                    &mut spec[theta * s_len..(theta + 1) * s_len],
                );
            }
            let t_fwd = sw.stop();
            let sw = telemetry::start(Phase::Influence);
            inf.apply(spec);
            let t_inf = sw.stop();
            let sw = telemetry::start(Phase::InverseFft);
            for theta in 0..3 {
                fft.inverse(
                    &mut spec[theta * s_len..(theta + 1) * s_len],
                    &mut mesh[theta * k3..(theta + 1) * k3],
                );
            }
            let t_inv = sw.stop();
            let sw = telemetry::start(Phase::Interpolation);
            interpolate(pm, mesh, u_recip);
            let t_interp = sw.stop();
            phases = [t_spread, t_fwd, t_inf, t_inv, t_interp];
            t_real = handle.join().expect("real-space branch panicked");
        });
        let t_recip: f64 = phases.iter().sum();
        let st = &mut self.state;
        for ((o, a), b) in u.iter_mut().zip(st.real_scratch.iter()).zip(&st.interp_scratch) {
            *o = a + b;
        }
        st.times.real_space += t_real;
        st.times.spreading += phases[0];
        st.times.forward_fft += phases[1];
        st.times.influence += phases[2];
        st.times.inverse_fft += phases[3];
        st.times.interpolation += phases[4];
        st.times.applications += 1;
        (t_real, t_recip)
    }

    /// Reciprocal part for one column of a row-major multivector via the
    /// **single-RHS** pipeline: gathers column `col` into operator-owned
    /// scratch, runs `recip_apply_add`, scatters the result back. This is
    /// the pre-batching behavior, kept as the per-column baseline for the
    /// `pme_apply_multi` bench and the batched-agreement tests.
    #[hibd::hot]
    pub fn recip_apply_add_column(&mut self, x: &[f64], y: &mut [f64], s: usize, col: usize) {
        let n3 = 3 * self.n;
        let mut buf = std::mem::take(&mut self.state.col_scratch);
        buf.resize(2 * n3, 0.0);
        let (fc, uc) = buf.split_at_mut(n3);
        for (i, fv) in fc.iter_mut().enumerate() {
            *fv = x[i * s + col];
        }
        uc.fill(0.0);
        self.recip_apply_add(fc, uc);
        for (i, uv) in uc.iter().enumerate() {
            y[i * s + col] += uv;
        }
        self.state.col_scratch = buf;
    }

    /// Grow the batch scratch to hold `3*width` meshes and spectra. `resize`
    /// keeps existing capacity, so steady-state block applies never allocate.
    fn ensure_batch_scratch(&mut self, width: usize) {
        let k = self.plans.params.mesh_dim;
        let k3 = k * k * k;
        let s_len = k * k * (k / 2 + 1);
        if self.state.batch_mesh.len() < 3 * width * k3 {
            self.state.batch_mesh.resize(3 * width * k3, 0.0);
        }
        if self.state.batch_spec.len() < 3 * width * s_len {
            self.state.batch_spec.resize(3 * width * s_len, Complex64::ZERO);
        }
        if telemetry::enabled() {
            telemetry::gauge_max(Counter::PmeScratchBytes, self.memory_bytes() as u64);
        }
    }

    /// `Y[:, col0..col0+width] += M_recip X[:, col0..col0+width]` for
    /// row-major `[3n][s]` multivectors — the batched reciprocal pipeline.
    ///
    /// One spreading pass serves every column (`spread_multi`), all
    /// `3*width` meshes go through the FFT plans as a single batch
    /// (`forward_batch`/`inverse_batch`, shared twiddles), the influence
    /// function streams its scalar table once per column, and
    /// `interpolate_multi` accumulates straight into `y` — no gather,
    /// scatter, or per-apply allocation anywhere. The column-chunk form
    /// exists so the hybrid executor can split a block across devices.
    #[hibd::hot]
    pub fn recip_apply_add_cols(
        &mut self,
        x: &[f64],
        y: &mut [f64],
        s: usize,
        col0: usize,
        width: usize,
    ) {
        assert_eq!(x.len(), 3 * self.n * s);
        assert_eq!(y.len(), 3 * self.n * s);
        assert!(col0 + width <= s && width > 0, "column chunk out of range");
        let k = self.plans.params.mesh_dim;
        let k3 = k * k * k;
        let s_len = k * k * (k / 2 + 1);
        self.ensure_batch_scratch(width);
        let st = &mut self.state;
        let mesh = &mut st.batch_mesh[..3 * width * k3];
        let spec = &mut st.batch_spec[..3 * width * s_len];

        let sw = telemetry::start(Phase::Spreading);
        self.plan.spread_multi(&self.pm, x, s, col0, width, mesh);
        st.times.spreading += sw.stop();
        let sw = telemetry::start(Phase::ForwardFft);
        self.plans.fft.forward_batch(mesh, spec, 3 * width);
        st.times.forward_fft += sw.stop();
        let sw = telemetry::start(Phase::Influence);
        self.plans.inf.apply_multi(spec, width);
        st.times.influence += sw.stop();
        let sw = telemetry::start(Phase::InverseFft);
        self.plans.fft.inverse_batch(spec, mesh, 3 * width);
        st.times.inverse_fft += sw.stop();
        let sw = telemetry::start(Phase::Interpolation);
        interpolate_multi(&self.pm, mesh, s, col0, width, y);
        st.times.interpolation += sw.stop();
    }

    /// `Y += M_recip X` over all `s` columns through the batched pipeline.
    #[hibd::hot]
    pub fn recip_apply_add_multi(&mut self, x: &[f64], y: &mut [f64], s: usize) {
        self.recip_apply_add_cols(x, y, s, 0, s);
    }

    /// Per-column block application (the pre-batching `apply_multi`):
    /// multi-RHS SpMM for the real part, then the single-RHS reciprocal
    /// pipeline once per column. Kept public as the baseline the
    /// `pme_apply_multi` bench and agreement tests compare against.
    #[hibd::hot]
    pub fn apply_multi_columnwise(&mut self, x: &[f64], y: &mut [f64], s: usize) {
        assert_eq!(x.len(), 3 * self.n * s);
        assert_eq!(y.len(), 3 * self.n * s);
        self.real_apply_multi(x, y, s);
        for col in 0..s {
            self.recip_apply_add_column(x, y, s, col);
        }
        self.state.times.applications += s;
    }
}

impl LinearOperator for PmeOperator {
    fn dim(&self) -> usize {
        3 * self.n
    }

    /// `u = PME(f) = (M_real + M_self) f + M_recip f`.
    #[hibd::hot]
    fn apply(&mut self, f: &[f64], u: &mut [f64]) {
        self.real_apply(f, u);
        self.recip_apply_add(f, u);
        self.state.times.applications += 1;
    }

    /// Block application: multi-RHS SpMM for the real part, batched
    /// spread/FFT/influence/interpolate for the reciprocal part. This is
    /// the "3D FFTs for blocks of vectors" the paper notes no library
    /// provides (Sec. III-B) — one pass over the P nonzeros and one batched
    /// trip through the FFT plans serve all `s` columns.
    #[hibd::hot]
    fn apply_multi(&mut self, x: &[f64], y: &mut [f64], s: usize) {
        assert_eq!(x.len(), 3 * self.n * s);
        assert_eq!(y.len(), 3 * self.n * s);
        self.real_apply_multi(x, y, s);
        self.recip_apply_add_multi(x, y, s);
        self.state.times.applications += s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hibd_rpy::dense_ewald_mobility;

    fn lcg_positions(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * box_l
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    fn lcg_vector(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    fn test_params() -> PmeParams {
        PmeParams {
            a: 1.0,
            eta: 1.0,
            box_l: 10.0,
            alpha: 0.8,
            mesh_dim: 32,
            spline_order: 6,
            r_max: 4.5,
        }
    }

    #[test]
    fn pme_matches_dense_ewald() {
        // The headline correctness test: e_p = |u_pme - u_exact| / |u_exact|
        // against the tight-tolerance dense Ewald matrix.
        let n = 10;
        let params = test_params();
        let pos = lcg_positions(n, params.box_l, 3);
        let mut op = PmeOperator::new(&pos, params).unwrap();
        let dense = dense_ewald_mobility(
            &pos,
            &RpyEwald::new(params.a, params.eta, params.box_l, params.alpha, 1e-12),
        );
        let f = lcg_vector(3 * n, 7);
        let mut u_pme = vec![0.0; 3 * n];
        op.apply(&f, &mut u_pme);
        let mut u_exact = vec![0.0; 3 * n];
        dense.mul_vec(&f, &mut u_exact);
        let num: f64 =
            u_pme.iter().zip(&u_exact).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        let den: f64 = u_exact.iter().map(|v| v * v).sum::<f64>().sqrt();
        let ep = num / den;
        assert!(ep < 1e-3, "PME relative error e_p = {ep:e}");
    }

    #[test]
    fn operator_is_symmetric() {
        // g^T (M f) == f^T (M g) for the full PME operator.
        let n = 12;
        let params = test_params();
        let pos = lcg_positions(n, params.box_l, 9);
        let mut op = PmeOperator::new(&pos, params).unwrap();
        let f = lcg_vector(3 * n, 11);
        let g = lcg_vector(3 * n, 13);
        let mut mf = vec![0.0; 3 * n];
        op.apply(&f, &mut mf);
        let mut mg = vec![0.0; 3 * n];
        op.apply(&g, &mut mg);
        let lhs: f64 = g.iter().zip(&mf).map(|(a, b)| a * b).sum();
        let rhs: f64 = f.iter().zip(&mg).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1e-10), "{lhs} vs {rhs}");
    }

    #[test]
    fn operator_is_linear() {
        let n = 8;
        let params = test_params();
        let pos = lcg_positions(n, params.box_l, 15);
        let mut op = PmeOperator::new(&pos, params).unwrap();
        let f = lcg_vector(3 * n, 17);
        let g = lcg_vector(3 * n, 19);
        let comb: Vec<f64> = f.iter().zip(&g).map(|(a, b)| 2.0 * a - 0.5 * b).collect();
        let mut mf = vec![0.0; 3 * n];
        op.apply(&f, &mut mf);
        let mut mg = vec![0.0; 3 * n];
        op.apply(&g, &mut mg);
        let mut mc = vec![0.0; 3 * n];
        op.apply(&comb, &mut mc);
        for i in 0..3 * n {
            let want = 2.0 * mf[i] - 0.5 * mg[i];
            assert!((mc[i] - want).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn apply_multi_matches_columnwise_apply() {
        let n = 6;
        let s = 3;
        let params = test_params();
        let pos = lcg_positions(n, params.box_l, 21);
        let mut op = PmeOperator::new(&pos, params).unwrap();
        let x = lcg_vector(3 * n * s, 23);
        let mut y = vec![0.0; 3 * n * s];
        op.apply_multi(&x, &mut y, s);
        for col in 0..s {
            let xc: Vec<f64> = (0..3 * n).map(|i| x[i * s + col]).collect();
            let mut yc = vec![0.0; 3 * n];
            op.apply(&xc, &mut yc);
            for i in 0..3 * n {
                assert!((y[i * s + col] - yc[i]).abs() < 1e-12, "col {col} i {i}");
            }
        }
    }

    #[test]
    fn batched_apply_multi_matches_columnwise_baseline() {
        // The batched pipeline must reproduce the per-column baseline to
        // roundoff for several block widths.
        let n = 9;
        let params = test_params();
        let pos = lcg_positions(n, params.box_l, 61);
        let mut op = PmeOperator::new(&pos, params).unwrap();
        for s in [1usize, 2, 4, 7] {
            let x = lcg_vector(3 * n * s, 63 + s as u64);
            let mut y_batched = vec![0.0; 3 * n * s];
            op.apply_multi(&x, &mut y_batched, s);
            let mut y_colwise = vec![0.0; 3 * n * s];
            op.apply_multi_columnwise(&x, &mut y_colwise, s);
            for i in 0..3 * n * s {
                assert!(
                    (y_batched[i] - y_colwise[i]).abs() < 1e-12,
                    "s={s} i={i}: {} vs {}",
                    y_batched[i],
                    y_colwise[i]
                );
            }
        }
    }

    #[test]
    fn column_chunks_compose_to_full_block() {
        // recip_apply_add_cols over disjoint chunks must equal one full-width
        // call — the property the hybrid partitioned executor relies on.
        let n = 8;
        let s = 5;
        let params = test_params();
        let pos = lcg_positions(n, params.box_l, 71);
        let mut op = PmeOperator::new(&pos, params).unwrap();
        let x = lcg_vector(3 * n * s, 73);
        let mut y_full = vec![0.0; 3 * n * s];
        op.recip_apply_add_multi(&x, &mut y_full, s);
        let mut y_chunked = vec![0.0; 3 * n * s];
        op.recip_apply_add_cols(&x, &mut y_chunked, s, 0, 2);
        op.recip_apply_add_cols(&x, &mut y_chunked, s, 2, 2);
        op.recip_apply_add_cols(&x, &mut y_chunked, s, 4, 1);
        for i in 0..3 * n * s {
            assert!(
                (y_full[i] - y_chunked[i]).abs() < 1e-13,
                "i={i}: {} vs {}",
                y_full[i],
                y_chunked[i]
            );
        }
    }

    #[test]
    fn repeated_block_applies_do_not_grow_memory() {
        // Batch scratch is grown once on first use and reused afterwards.
        let n = 8;
        let s = 4;
        let params = test_params();
        let pos = lcg_positions(n, params.box_l, 81);
        let mut op = PmeOperator::new(&pos, params).unwrap();
        let x = lcg_vector(3 * n * s, 83);
        let mut y = vec![0.0; 3 * n * s];
        op.apply_multi(&x, &mut y, s);
        let after_first = op.memory_bytes();
        for _ in 0..3 {
            op.apply_multi(&x, &mut y, s);
        }
        assert_eq!(op.memory_bytes(), after_first);
        // And the batch scratch is reflected in the accounting.
        let k = params.mesh_dim;
        let k3 = k * k * k;
        let s_len = k * k * (k / 2 + 1);
        let batch_bytes = 3 * s * k3 * 8 + 3 * s * s_len * 16;
        let fresh = PmeOperator::new(&pos, params).unwrap().memory_bytes();
        assert_eq!(after_first, fresh + batch_bytes);
    }

    #[test]
    fn overlapped_apply_accumulates_reciprocal_phase_times() {
        let n = 8;
        let params = test_params();
        let pos = lcg_positions(n, params.box_l, 91);
        let mut op = PmeOperator::new(&pos, params).unwrap();
        let f = lcg_vector(3 * n, 93);
        let mut u = vec![0.0; 3 * n];
        op.take_times();
        let (_t_real, t_recip) = op.apply_overlapped(&f, &mut u);
        let t = op.take_times();
        assert_eq!(t.applications, 1);
        assert!(t.forward_fft > 0.0, "forward FFT time must be accumulated");
        assert!(t.inverse_fft > 0.0, "inverse FFT time must be accumulated");
        assert!(
            (t.recip_total() - t_recip).abs() < 1e-9,
            "phase sum {} vs branch total {}",
            t.recip_total(),
            t_recip
        );
    }

    #[test]
    fn overlapped_apply_matches_sequential() {
        let n = 10;
        let params = test_params();
        let pos = lcg_positions(n, params.box_l, 51);
        let mut op = PmeOperator::new(&pos, params).unwrap();
        let f = lcg_vector(3 * n, 53);
        let mut u_seq = vec![0.0; 3 * n];
        op.apply(&f, &mut u_seq);
        let mut u_ovl = vec![0.0; 3 * n];
        let (t_real, t_recip) = op.apply_overlapped(&f, &mut u_ovl);
        assert!(t_real >= 0.0 && t_recip > 0.0);
        for i in 0..3 * n {
            assert!((u_seq[i] - u_ovl[i]).abs() < 1e-13, "i={i}");
        }
    }

    #[test]
    fn phase_times_accumulate() {
        let n = 8;
        let params = test_params();
        let pos = lcg_positions(n, params.box_l, 31);
        let mut op = PmeOperator::new(&pos, params).unwrap();
        let f = lcg_vector(3 * n, 33);
        let mut u = vec![0.0; 3 * n];
        op.apply(&f, &mut u);
        op.apply(&f, &mut u);
        let t = op.take_times();
        assert_eq!(t.applications, 2);
        assert!(t.forward_fft > 0.0);
        assert!(t.recip_total() > 0.0);
        assert!(t.total() >= t.recip_total());
        // take_times resets.
        let t2 = op.take_times();
        assert_eq!(t2.applications, 0);
    }

    #[test]
    fn memory_scales_linearly_in_particles_for_fixed_mesh() {
        let params = test_params();
        let pos_small = lcg_positions(10, params.box_l, 41);
        let pos_large = lcg_positions(40, params.box_l, 43);
        let m_small = PmeOperator::new(&pos_small, params).unwrap().memory_bytes();
        let m_large = PmeOperator::new(&pos_large, params).unwrap().memory_bytes();
        // P grows by 12 p^3 per particle; meshes stay fixed.
        let p3 = params.spline_order.pow(3);
        let expected_growth = 30 * 12 * p3;
        let growth = m_large - m_small;
        assert!(
            growth >= expected_growth && growth < expected_growth * 4,
            "growth {growth} vs P-only {expected_growth}"
        );
    }
}
