//! The PME influence function (paper Section IV-B4).
//!
//! On the half spectrum (`K x K x (K/2+1)` points), the reciprocal kernel is
//! the 3x3 tensor `I(k) = s(k) (I - k̂k̂ᵀ)` with the scalar
//!
//! `s(k) = mu0 * m_alpha(|k|) * |b0|^2 |b1|^2 |b2|^2 / L^3`
//!
//! (`m_alpha` from Beenakker's reciprocal kernel, `|b|^2` the B-spline Euler
//! factors, `1/L^3` the reciprocal-sum prefactor, `k = 0` excluded).
//!
//! Storing the full tensor would need 6 doubles per point; following the
//! paper, only the scalar `s(k)` is stored ("a savings of a factor of 6")
//! and the projector `(I - k̂k̂ᵀ)` is rebuilt from the lattice vector with no
//! memory accesses. Applying it is a memory-bandwidth-bound streaming pass.

use crate::bspline::euler_factors;
use hibd_fft::Complex64;
use hibd_hot as hibd;
use hibd_rpy::RpyEwald;
use rayon::prelude::*;
use std::f64::consts::TAU;

/// Precomputed influence function for a fixed `(K, p, alpha, L)`.
#[derive(Clone, Debug)]
pub struct Influence {
    k: usize,
    nc: usize,
    /// `2 pi / L`.
    kunit: f64,
    /// `s(k)` per half-spectrum point, 0 at `k = 0`.
    scalars: Vec<f64>,
}

/// Fold a mesh index into its signed frequency integer.
#[inline]
pub fn fold(ki: usize, k: usize) -> i64 {
    if ki <= k / 2 {
        ki as i64
    } else {
        ki as i64 - k as i64
    }
}

impl Influence {
    /// Precompute the scalar array; `ewald` supplies `m_alpha` and `mu0`,
    /// `p` the B-spline order.
    pub fn new(ewald: &RpyEwald, k: usize, p: usize) -> Influence {
        let nc = k / 2 + 1;
        let b2 = euler_factors(k, p);
        let l = ewald.box_l;
        let kunit = TAU / l;
        let mu0 = ewald.mu0();
        let vol = l * l * l;
        let mut scalars = vec![0.0; k * k * nc];
        scalars.par_chunks_mut(k * nc).enumerate().for_each(|(k0, plane)| {
            let f0 = fold(k0, k) as f64;
            for k1 in 0..k {
                let f1 = fold(k1, k) as f64;
                for k2 in 0..nc {
                    let f2 = k2 as f64; // half spectrum: always <= K/2
                    if k0 == 0 && k1 == 0 && k2 == 0 {
                        continue; // k = 0 excluded
                    }
                    let k2norm = kunit * kunit * (f0 * f0 + f1 * f1 + f2 * f2);
                    let m = ewald.recip_scalar(k2norm);
                    plane[k1 * nc + k2] = mu0 * m * b2[k0] * b2[k1] * b2[k2] / vol;
                }
            }
        });
        Influence { k, nc, kunit, scalars }
    }

    /// Mesh dimension `K`.
    pub fn mesh_dim(&self) -> usize {
        self.k
    }

    /// Bytes stored (the paper's `8 * K^3 / 2`).
    pub fn memory_bytes(&self) -> usize {
        self.scalars.len() * 8
    }

    /// Raw scalar value at half-spectrum index (tests).
    pub fn scalar_at(&self, k0: usize, k1: usize, k2: usize) -> f64 {
        self.scalars[(k0 * self.k + k1) * self.nc + k2]
    }

    /// Zero out every negative scalar, returning the clipped mass ratio
    /// `sum(|negative|) / sum(positive)`.
    ///
    /// Beenakker's reciprocal kernel truncates a square at `O(k^2)`, so
    /// `m_alpha(k)` dips (exponentially damped) negative for `|k| >
    /// sqrt(3)/a`. The PSE sampler needs `I(k) >= 0` to take its square
    /// root; at the small PSE splitting parameter the clipped mass is tiny
    /// (~1e-5 at `xi = 0.25/a`), but the *exact* influence used by the PME
    /// drift operator must keep the negative lobes, so clamping is opt-in.
    pub fn clamp_nonnegative(&mut self) -> f64 {
        let mut neg = 0.0;
        let mut pos = 0.0;
        for s in &mut self.scalars {
            if *s < 0.0 {
                neg -= *s;
                *s = 0.0;
            } else {
                pos += *s;
            }
        }
        neg / pos.max(f64::MIN_POSITIVE)
    }

    /// Apply `D_theta = I(k) C_theta` in place. `spec` holds the three force
    /// component spectra concatenated: `[x | y | z]`, each of length
    /// `K*K*(K/2+1)`.
    #[hibd::hot]
    pub fn apply(&self, spec: &mut [Complex64]) {
        let s_len = self.k * self.k * self.nc;
        assert_eq!(spec.len(), 3 * s_len, "expected three concatenated spectra");
        let (sx, rest) = spec.split_at_mut(s_len);
        let (sy, sz) = rest.split_at_mut(s_len);
        self.apply_components(sx, sy, sz);
    }

    /// Apply `I(k)` to a batch of `width` column spectra laid out
    /// `[theta][col]`: x spectra for all columns first, then y, then z
    /// (matching the batched mesh layout in `spread_multi`). One scalar-table
    /// pass per column; the projector is rebuilt from the lattice vector
    /// exactly as in the single-RHS path.
    #[hibd::hot]
    pub fn apply_multi(&self, spec: &mut [Complex64], width: usize) {
        let s_len = self.k * self.k * self.nc;
        assert_eq!(spec.len(), 3 * width * s_len, "expected 3*width spectra");
        let (sx_all, rest) = spec.split_at_mut(width * s_len);
        let (sy_all, sz_all) = rest.split_at_mut(width * s_len);
        for j in 0..width {
            let r = j * s_len..(j + 1) * s_len;
            self.apply_components(&mut sx_all[r.clone()], &mut sy_all[r.clone()], &mut sz_all[r]);
        }
    }

    /// Apply `I(k)^{1/2} = s(k)^{1/2} (I - k̂k̂ᵀ)` in place (the projector is
    /// idempotent, so the square root only touches the scalar). Negative
    /// scalars are treated as zero; compose with
    /// [`clamp_nonnegative`](Self::clamp_nonnegative) so that
    /// `apply_sqrt ∘ apply_sqrt = apply` exactly.
    #[hibd::hot]
    pub fn apply_sqrt(&self, spec: &mut [Complex64]) {
        let s_len = self.k * self.k * self.nc;
        assert_eq!(spec.len(), 3 * s_len, "expected three concatenated spectra");
        let (sx, rest) = spec.split_at_mut(s_len);
        let (sy, sz) = rest.split_at_mut(s_len);
        self.stream_components(sx, sy, sz, true);
    }

    /// Batched [`apply_sqrt`](Self::apply_sqrt) over `width` column spectra
    /// in the `[theta][col]` layout of [`apply_multi`](Self::apply_multi).
    #[hibd::hot]
    pub fn apply_sqrt_multi(&self, spec: &mut [Complex64], width: usize) {
        let s_len = self.k * self.k * self.nc;
        assert_eq!(spec.len(), 3 * width * s_len, "expected 3*width spectra");
        let (sx_all, rest) = spec.split_at_mut(width * s_len);
        let (sy_all, sz_all) = rest.split_at_mut(width * s_len);
        for j in 0..width {
            let r = j * s_len..(j + 1) * s_len;
            self.stream_components(
                &mut sx_all[r.clone()],
                &mut sy_all[r.clone()],
                &mut sz_all[r],
                true,
            );
        }
    }

    /// Core streaming pass over one (x, y, z) spectrum triple.
    fn apply_components(&self, sx: &mut [Complex64], sy: &mut [Complex64], sz: &mut [Complex64]) {
        self.stream_components(sx, sy, sz, false);
    }

    /// Streaming pass; `sqrt` selects `s(k)^{1/2}` (clamped at zero) over
    /// `s(k)`. The projector is applied once either way — it is idempotent,
    /// so the square root of the tensor only changes the scalar factor.
    #[hibd::hot]
    fn stream_components(
        &self,
        sx: &mut [Complex64],
        sy: &mut [Complex64],
        sz: &mut [Complex64],
        sqrt: bool,
    ) {
        let plane = self.k * self.nc;
        let k = self.k;
        let nc = self.nc;
        let kunit = self.kunit;

        sx.par_chunks_mut(plane)
            .zip(sy.par_chunks_mut(plane))
            .zip(sz.par_chunks_mut(plane))
            .zip(self.scalars.par_chunks(plane))
            .enumerate()
            .for_each(|(k0, (((px, py), pz), ps))| {
                let f0 = fold(k0, k) as f64 * kunit;
                for k1 in 0..k {
                    let f1 = fold(k1, k) as f64 * kunit;
                    let row = k1 * nc;
                    for k2 in 0..nc {
                        let s = if sqrt { ps[row + k2].max(0.0).sqrt() } else { ps[row + k2] };
                        let idx = row + k2;
                        if s == 0.0 {
                            px[idx] = Complex64::ZERO;
                            py[idx] = Complex64::ZERO;
                            pz[idx] = Complex64::ZERO;
                            continue;
                        }
                        let f2 = k2 as f64 * kunit;
                        let knorm2 = f0 * f0 + f1 * f1 + f2 * f2;
                        let inv = 1.0 / knorm2;
                        let (cx, cy, cz) = (px[idx], py[idx], pz[idx]);
                        // k·c (complex, no conjugation), then projector.
                        let kdot = cx.scale(f0) + cy.scale(f1) + cz.scale(f2);
                        let proj = kdot.scale(inv);
                        px[idx] = (cx - proj.scale(f0)).scale(s);
                        py[idx] = (cy - proj.scale(f1)).scale(s);
                        pz[idx] = (cz - proj.scale(f2)).scale(s);
                    }
                }
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_ewald() -> RpyEwald {
        RpyEwald::new(1.0, 1.0, 10.0, 0.8, 1e-8)
    }

    #[test]
    fn dc_mode_is_zeroed() {
        let inf = Influence::new(&test_ewald(), 8, 4);
        assert_eq!(inf.scalar_at(0, 0, 0), 0.0);
        assert!(inf.scalar_at(1, 0, 0) != 0.0);
    }

    #[test]
    fn scalars_match_direct_kernel_evaluation() {
        let ewald = test_ewald();
        let k = 8;
        let p = 4;
        let inf = Influence::new(&ewald, k, p);
        let b2 = euler_factors(k, p);
        let l = ewald.box_l;
        // Spot check a few modes, including negative frequencies.
        for (k0, k1, k2) in [(1usize, 0usize, 0usize), (7, 2, 3), (4, 4, 4), (5, 6, 1)] {
            let f = [fold(k0, k), fold(k1, k), fold(k2, k)];
            let k2norm = (TAU / l).powi(2) * f.iter().map(|&x| (x * x) as f64).sum::<f64>();
            let want =
                ewald.mu0() * ewald.recip_scalar(k2norm) * b2[k0] * b2[k1] * b2[k2] / (l * l * l);
            let got = inf.scalar_at(k0, k1, k2);
            assert!(
                (got - want).abs() < 1e-15 * want.abs().max(1e-10),
                "({k0},{k1},{k2}): {got} vs {want}"
            );
        }
    }

    #[test]
    fn scalars_symmetric_under_frequency_negation() {
        // s(-k) = s(k): along the first two axes the half spectrum stores
        // both signs.
        let inf = Influence::new(&test_ewald(), 10, 4);
        for k0 in 1..10 {
            for k1 in 1..10 {
                let a = inf.scalar_at(k0, k1, 2);
                let b = inf.scalar_at(10 - k0, 10 - k1, 2);
                assert!((a - b).abs() < 1e-12 * a.abs().max(1e-30), "({k0},{k1})");
            }
        }
    }

    #[test]
    fn apply_projects_out_longitudinal_component() {
        // A spectrum whose vector part is parallel to k must map to zero.
        let ewald = test_ewald();
        let k = 8;
        let inf = Influence::new(&ewald, k, 4);
        let s_len = k * k * (k / 2 + 1);
        let mut spec = vec![Complex64::ZERO; 3 * s_len];
        // Mode (1, 2, 3): set c parallel to k-direction.
        let (k0, k1, k2) = (1usize, 2usize, 3usize);
        let idx = (k0 * k + k1) * (k / 2 + 1) + k2;
        let f = [1.0, 2.0, 3.0];
        for theta in 0..3 {
            spec[theta * s_len + idx] = Complex64::new(f[theta], -0.5 * f[theta]);
        }
        inf.apply(&mut spec);
        for theta in 0..3 {
            assert!(spec[theta * s_len + idx].abs() < 1e-12, "theta={theta}");
        }
    }

    #[test]
    fn apply_keeps_transverse_component_scaled() {
        let ewald = test_ewald();
        let k = 8;
        let inf = Influence::new(&ewald, k, 4);
        let s_len = k * k * (k / 2 + 1);
        let mut spec = vec![Complex64::ZERO; 3 * s_len];
        // Mode along x only: k = (1,0,0); transverse vector (0, 1, 0).
        let idx = k * (k / 2 + 1);
        spec[s_len + idx] = Complex64::ONE; // y component
        inf.apply(&mut spec);
        let want = inf.scalar_at(1, 0, 0);
        assert!((spec[s_len + idx].re - want).abs() < 1e-15);
        assert!(spec[idx].abs() < 1e-18, "x stays zero");
        assert!(spec[2 * s_len + idx].abs() < 1e-18, "z stays zero");
    }

    #[test]
    fn memory_is_one_scalar_per_half_spectrum_point() {
        let k = 16;
        let inf = Influence::new(&test_ewald(), k, 4);
        assert_eq!(inf.memory_bytes(), 8 * k * k * (k / 2 + 1));
    }

    #[test]
    fn clamp_zeroes_exactly_the_negative_scalars() {
        // At alpha = 0.8, L = 10, K = 8 the corner modes sit beyond
        // |k| = sqrt(3)/a where Beenakker's kernel goes negative.
        let mut inf = Influence::new(&test_ewald(), 8, 4);
        let exact = inf.clone();
        let mut neg = 0.0;
        let mut pos = 0.0;
        for k0 in 0..8 {
            for k1 in 0..8 {
                for k2 in 0..5 {
                    let s = exact.scalar_at(k0, k1, k2);
                    if s < 0.0 {
                        neg -= s;
                    } else {
                        pos += s;
                    }
                }
            }
        }
        assert!(neg > 0.0, "test config must have negative modes");
        let ratio = inf.clamp_nonnegative();
        assert!((ratio - neg / pos).abs() < 1e-12 * ratio);
        for k0 in 0..8 {
            for k1 in 0..8 {
                for k2 in 0..5 {
                    let s = exact.scalar_at(k0, k1, k2);
                    let c = inf.scalar_at(k0, k1, k2);
                    if s < 0.0 {
                        assert_eq!(c, 0.0);
                    } else {
                        assert_eq!(c, s);
                    }
                }
            }
        }
    }

    /// Deterministic pseudo-random spectrum triple (no RNG dependency here).
    fn synthetic_spectra(s_len: usize) -> Vec<Complex64> {
        let mut spec = vec![Complex64::ZERO; 3 * s_len];
        let mut x = 0x243F6A8885A308D3u64;
        for v in &mut spec {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let re = (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let im = (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            *v = Complex64::new(re, im);
        }
        spec
    }

    #[test]
    fn apply_sqrt_composed_twice_matches_apply_after_clamp() {
        let k = 10;
        let mut inf = Influence::new(&test_ewald(), k, 4);
        inf.clamp_nonnegative();
        let s_len = k * k * (k / 2 + 1);
        let base = synthetic_spectra(s_len);
        let mut twice = base.clone();
        inf.apply_sqrt(&mut twice);
        inf.apply_sqrt(&mut twice);
        let mut once = base;
        inf.apply(&mut once);
        let scale = once.iter().map(|c| c.abs()).fold(0.0f64, f64::max);
        for (a, b) in twice.iter().zip(&once) {
            assert!((*a - *b).abs() < 1e-12 * scale, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn apply_sqrt_multi_matches_columnwise_apply_sqrt() {
        let k = 8;
        let mut inf = Influence::new(&test_ewald(), k, 4);
        inf.clamp_nonnegative();
        let s_len = k * k * (k / 2 + 1);
        let width = 3;
        // Build the batched layout [theta][col] from `width` single triples.
        let singles: Vec<Vec<Complex64>> = (0..width)
            .map(|j| synthetic_spectra(s_len).iter().map(|c| c.scale(1.0 + j as f64)).collect())
            .collect();
        let mut batch = vec![Complex64::ZERO; 3 * width * s_len];
        for theta in 0..3 {
            for (j, s) in singles.iter().enumerate() {
                let dst = (theta * width + j) * s_len;
                batch[dst..dst + s_len].copy_from_slice(&s[theta * s_len..(theta + 1) * s_len]);
            }
        }
        inf.apply_sqrt_multi(&mut batch, width);
        for (j, s) in singles.iter().enumerate() {
            let mut want = s.clone();
            inf.apply_sqrt(&mut want);
            for theta in 0..3 {
                let src = (theta * width + j) * s_len;
                for i in 0..s_len {
                    let got = batch[src + i];
                    let exp = want[theta * s_len + i];
                    assert!((got - exp).abs() < 1e-14, "col {j} theta {theta}");
                }
            }
        }
    }
}
