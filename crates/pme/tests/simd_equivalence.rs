//! Scalar-vs-SIMD equivalence for the B-spline spread/interpolate kernels.
//!
//! The AVX2 row kernels process the p^3 stencil as contiguous z-runs with
//! FMA, so they are not bitwise identical to the scalar fallback; the
//! contract is <= 1e-13 relative error (the scalar twin *is* the
//! bitwise-unchanged pre-SIMD loop). The `hibd_simd` override is
//! process-global, so every toggle serializes on `SIMD_LOCK`. Orders cover
//! the dispatch gate (p = 3 stays scalar, p >= 4 vectorizes) and the
//! multi-RHS widths cover partial 4-lane tails and column tiling.

use hibd_mathx::Vec3;
use hibd_pme::pmat::build_interp_matrix;
use hibd_pme::spread::{interpolate, interpolate_multi, SpreadPlan};
use proptest::prelude::*;
use std::sync::Mutex;

static SIMD_LOCK: Mutex<()> = Mutex::new(());

fn scalar_then_auto<R>(f: impl Fn() -> R) -> (R, R) {
    let _l = SIMD_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let scalar = {
        let _g = hibd_simd::ScalarGuard::new();
        f()
    };
    (scalar, f())
}

fn assert_close(a: &[f64], b: &[f64], what: &str) {
    let scale = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() <= 1e-13 * scale, "{what}[{i}]: {x} vs {y} (scale {scale})");
    }
}

fn positions(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64 * box_l
    };
    (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
}

fn vector(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spread_and_interpolate_match_scalar(
        p in prop::sample::select(vec![3usize, 4, 5, 6, 8]),
        seed in 1u64..1000,
    ) {
        let (n, k, box_l) = (18, 12, 9.0);
        let pos = positions(n, box_l, seed);
        let pm = build_interp_matrix(&pos, box_l, k, p);
        let plan = SpreadPlan::new(&pm.scaled, k, p);
        let f = vector(3 * n, seed ^ 0xabcd);
        let k3 = k * k * k;
        let (scalar, auto) = scalar_then_auto(|| {
            let mut mesh = vec![0.0; 3 * k3];
            plan.spread(&pm, &f, &mut mesh);
            let mut u = vec![0.0; 3 * n];
            interpolate(&pm, &mesh, &mut u);
            (mesh, u)
        });
        assert_close(&auto.0, &scalar.0, "mesh");
        assert_close(&auto.1, &scalar.1, "u");
    }

    #[test]
    fn multi_rhs_spread_and_interpolate_match_scalar(
        s in prop::sample::select(vec![1usize, 2, 3, 7, 8]),
        p in prop::sample::select(vec![4usize, 6]),
        seed in 1u64..1000,
    ) {
        let (n, k, box_l) = (14, 10, 8.0);
        let pos = positions(n, box_l, seed);
        let pm = build_interp_matrix(&pos, box_l, k, p);
        let plan = SpreadPlan::new(&pm.scaled, k, p);
        let f = vector(3 * n * s, seed ^ 0x5a5a);
        let k3 = k * k * k;
        // Full-width chunk plus (when s allows) an offset partial chunk, so
        // both the j0 = 0 and j0 > 0 mesh indexing paths are exercised.
        let chunks: Vec<(usize, usize)> =
            if s >= 3 { vec![(0, s), (1, s - 1)] } else { vec![(0, s)] };
        for (col0, width) in chunks {
            let (scalar, auto) = scalar_then_auto(|| {
                let mut mesh = vec![0.0; 3 * width * k3];
                plan.spread_multi(&pm, &f, s, col0, width, &mut mesh);
                let mut u = vec![0.0; 3 * n * s];
                interpolate_multi(&pm, &mesh, s, col0, width, &mut u);
                (mesh, u)
            });
            assert_close(&auto.0, &scalar.0, "multi mesh");
            assert_close(&auto.1, &scalar.1, "multi u");
        }
    }
}
