//! Property tests for the independent-set schedule verifier: the analytic
//! circular-interval prover must agree with the exhaustive cell-marking
//! simulation on arbitrary geometries, and every plan `SpreadPlan::new`
//! actually builds must pass with the one-cell safety margin.

use hibd_mathx::Vec3;
use hibd_pme::pmat::build_interp_matrix;
use hibd_pme::spread::SpreadPlan;
use hibd_pme::verify::{verify_geometry, verify_geometry_exhaustive, ScheduleViolation};
use proptest::prelude::*;

fn positions(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64 * box_l
    };
    (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
}

/// Collapse a verdict to (variant, offending pair): the two checkers must
/// agree on what is wrong and where, but may pick different witness cells
/// inside an overlap region.
fn kind(r: Result<(), ScheduleViolation>) -> Result<(), (u8, usize, usize)> {
    r.map_err(|v| match v {
        ScheduleViolation::OddBlockCount { nb } => (0, nb, nb),
        ScheduleViolation::HardOverlap { i, j, .. } => (1, i, j),
        ScheduleViolation::NoSafetyMargin { i, j, .. } => (2, i, j),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The two verifier implementations give identical verdicts on random
    /// geometries — including odd meshes, odd block counts, and block sides
    /// straddling the `p - 1` boundary.
    #[test]
    fn analytic_verifier_matches_exhaustive(
        p in prop::sample::select(vec![4usize, 6, 8]),
        nb in 2usize..=9,
        extra in 0usize..4,
        slack in -3i64..=3,
    ) {
        let bs = ((p as i64 + slack).max(1)) as usize;
        let k = nb * bs + extra;
        prop_assert_eq!(
            kind(verify_geometry(k, p, nb, bs)),
            kind(verify_geometry_exhaustive(k, p, nb, bs))
        );
    }

    /// Every plan built from real particle data — odd and even mesh sizes,
    /// all supported spline orders — verifies with the safety margin.
    #[test]
    fn built_plans_always_verify(
        p in prop::sample::select(vec![4usize, 6, 8]),
        k in 8usize..=48,
        n in 1usize..120,
        seed in 0u64..1000,
    ) {
        prop_assume!(k >= p);
        let box_l = 10.0;
        let pm = build_interp_matrix(&positions(n, box_l, seed), box_l, k, p);
        let plan = SpreadPlan::new(&pm.scaled, k, p);
        prop_assert_eq!(plan.verify(p), Ok(()));
        if !plan.is_serial() {
            prop_assert_eq!(plan.blocks_per_dim() % 2, 0);
            prop_assert!(plan.block_side() >= p);
        }
    }

    /// `bs == p - 1` is race-free but margin-less: both verifiers must
    /// reject it as a margin violation, never as a hard overlap.
    #[test]
    fn touching_geometry_rejected_with_margin_violation(
        p in prop::sample::select(vec![4usize, 6, 8]),
        half_nb in 2usize..=4,
        extra in 0usize..3,
    ) {
        let bs = p - 1;
        let nb = 2 * half_nb;
        let k = nb * bs + extra;
        for verdict in [verify_geometry(k, p, nb, bs), verify_geometry_exhaustive(k, p, nb, bs)] {
            prop_assert!(
                matches!(verdict, Err(ScheduleViolation::NoSafetyMargin { .. })),
                "bs = p - 1 gave {verdict:?}"
            );
        }
    }

    /// `bs <= p - 2` races outright: both verifiers must report a hard
    /// overlap with a witness cell both blocks write.
    #[test]
    fn overlapping_geometry_rejected_with_hard_overlap(
        p in prop::sample::select(vec![4usize, 6, 8]),
        half_nb in 2usize..=4,
        deficit in 2usize..=3,
    ) {
        prop_assume!(p > deficit);
        let bs = p - deficit;
        let nb = 2 * half_nb;
        let k = nb * bs;
        for verdict in [verify_geometry(k, p, nb, bs), verify_geometry_exhaustive(k, p, nb, bs)] {
            prop_assert!(
                matches!(verdict, Err(ScheduleViolation::HardOverlap { .. })),
                "bs = p - {deficit} gave {verdict:?}"
            );
        }
    }

    /// Odd block counts are rejected before any interval math runs.
    #[test]
    fn odd_block_counts_rejected(
        p in prop::sample::select(vec![4usize, 6, 8]),
        half_nb in 1usize..=4,
    ) {
        let nb = 2 * half_nb + 1;
        let k = nb * p;
        prop_assert_eq!(verify_geometry(k, p, nb, p), Err(ScheduleViolation::OddBlockCount { nb }));
    }
}
