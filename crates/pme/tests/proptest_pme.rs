//! Property-based tests of the PME building blocks.

use hibd_mathx::Vec3;
use hibd_pme::pmat::build_interp_matrix;
use hibd_pme::spread::{interpolate, interpolate_multi, SpreadPlan};
use hibd_pme::{PmeOperator, PmeParams};
use proptest::prelude::*;

fn particles(max_n: usize, box_l: f64) -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(
        (0.0..box_l, 0.0..box_l, 0.0..box_l).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
        1..max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn interpolation_matrix_rows_are_a_partition_of_unity(
        (pos, k, p) in (prop::sample::select(vec![12usize, 16, 20, 24]),
                        prop::sample::select(vec![4usize, 6]))
            .prop_flat_map(|(k, p)| (particles(30, 10.0), Just(k), Just(p)))
    ) {
        let pm = build_interp_matrix(&pos, 10.0, k, p);
        for r in 0..pos.len() {
            let (cols, vals) = pm.mat.row(r);
            let s: f64 = vals.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-11, "row {} sums to {}", r, s);
            prop_assert!(vals.iter().all(|&v| v >= -1e-15));
            prop_assert!(cols.iter().all(|&c| (c as usize) < k * k * k));
        }
    }

    #[test]
    fn parallel_spreading_equals_serial(
        (pos, forces, k, p) in (prop::sample::select(vec![16usize, 20, 24]),
                                prop::sample::select(vec![4usize]))
            .prop_flat_map(|(k, p)| {
                particles(40, 10.0).prop_flat_map(move |pos| {
                    let n = pos.len();
                    (Just(pos), prop::collection::vec(-1.0f64..1.0, 3 * n), Just(k), Just(p))
                })
            })
    ) {
        let pm = build_interp_matrix(&pos, 10.0, k, p);
        let plan = SpreadPlan::new(&pm.scaled, k, p);
        let k3 = k * k * k;
        let mut par = vec![0.0; 3 * k3];
        let mut ser = vec![0.0; 3 * k3];
        plan.spread(&pm, &forces, &mut par);
        plan.spread_serial(&pm, &forces, &mut ser);
        let maxd = par.iter().zip(&ser).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        prop_assert!(maxd < 1e-13, "max deviation {}", maxd);
    }

    #[test]
    fn spreading_conserves_each_force_component(
        (pos, forces) in particles(40, 12.0).prop_flat_map(|pos| {
            let n = pos.len();
            (Just(pos), prop::collection::vec(-1.0f64..1.0, 3 * n))
        })
    ) {
        let (k, p) = (18usize, 4usize);
        let pm = build_interp_matrix(&pos, 12.0, k, p);
        let plan = SpreadPlan::new(&pm.scaled, k, p);
        let k3 = k * k * k;
        let mut mesh = vec![0.0; 3 * k3];
        plan.spread(&pm, &forces, &mut mesh);
        for theta in 0..3 {
            let mesh_total: f64 = mesh[theta * k3..(theta + 1) * k3].iter().sum();
            let force_total: f64 = forces.iter().skip(theta).step_by(3).sum();
            prop_assert!((mesh_total - force_total).abs() < 1e-10,
                "component {}: {} vs {}", theta, mesh_total, force_total);
        }
    }

    #[test]
    fn spread_interpolate_adjointness(
        (pos, f, g) in particles(30, 8.0).prop_flat_map(|pos| {
            let n = pos.len();
            (
                Just(pos),
                prop::collection::vec(-1.0f64..1.0, 3 * n),
                prop::collection::vec(-1.0f64..1.0, 3 * 16 * 16 * 16),
            )
        })
    ) {
        // <P^T f, g>_mesh == <f, P g>_particles for the 3-component kernels.
        let (k, p) = (16usize, 4usize);
        let pm = build_interp_matrix(&pos, 8.0, k, p);
        let plan = SpreadPlan::new(&pm.scaled, k, p);
        let k3 = k * k * k;
        let mut mesh = vec![0.0; 3 * k3];
        plan.spread(&pm, &f, &mut mesh);
        let lhs: f64 = mesh.iter().zip(&g).map(|(a, b)| a * b).sum();
        let mut u = vec![0.0; f.len()];
        interpolate(&pm, &g, &mut u);
        let rhs: f64 = f.iter().zip(&u).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    #[test]
    fn batched_spread_and_interpolate_match_columnwise(
        (pos, f, k, s) in (prop::sample::select(vec![15usize, 16, 18, 21]),
                           prop::sample::select(vec![1usize, 2, 3, 7, 8]))
            .prop_flat_map(|(k, s)| {
                particles(30, 10.0).prop_flat_map(move |pos| {
                    let n = pos.len();
                    (Just(pos), prop::collection::vec(-1.0f64..1.0, 3 * n * s), Just(k), Just(s))
                })
            })
    ) {
        // Odd and even mesh dims: the spread/interpolate stages have no
        // FFT evenness constraint, so both parities must agree with the
        // single-RHS kernels columnwise.
        let p = 4usize;
        let n = pos.len();
        let pm = build_interp_matrix(&pos, 10.0, k, p);
        let plan = SpreadPlan::new(&pm.scaled, k, p);
        let k3 = k * k * k;

        let mut batch = vec![0.0; 3 * s * k3];
        plan.spread_multi(&pm, &f, s, 0, s, &mut batch);

        // interpolate_multi accumulates: prime the output with a marker.
        let mut u_multi = vec![0.5; 3 * n * s];
        interpolate_multi(&pm, &batch, s, 0, s, &mut u_multi);

        for j in 0..s {
            let fc: Vec<f64> = (0..3 * n).map(|i| f[i * s + j]).collect();
            let mut mesh = vec![0.0; 3 * k3];
            plan.spread(&pm, &fc, &mut mesh);
            for theta in 0..3 {
                let b = &batch[(theta * s + j) * k3..(theta * s + j + 1) * k3];
                let m = &mesh[theta * k3..(theta + 1) * k3];
                let maxd = b.iter().zip(m).map(|(a, c)| (a - c).abs()).fold(0.0f64, f64::max);
                prop_assert!(maxd < 1e-12, "spread k={} s={} col={} theta={}: {}", k, s, j, theta, maxd);
            }
            let mut uc = vec![0.0; 3 * n];
            interpolate(&pm, &mesh, &mut uc);
            for i in 0..3 * n {
                let got = u_multi[i * s + j] - 0.5;
                prop_assert!((got - uc[i]).abs() < 1e-12,
                    "interp k={} s={} col={} i={}: {} vs {}", k, s, j, i, got, uc[i]);
            }
        }
    }

    #[test]
    fn batched_reciprocal_pipeline_matches_columnwise(
        (pos, x, k, s) in (prop::sample::select(vec![16usize, 20, 24]),
                           prop::sample::select(vec![1usize, 2, 3, 7, 8]))
            .prop_flat_map(|(k, s)| {
                particles(16, 10.0).prop_flat_map(move |pos| {
                    let n = pos.len();
                    (Just(pos), prop::collection::vec(-1.0f64..1.0, 3 * n * s), Just(k), Just(s))
                })
            })
    ) {
        // Full batched spread -> forward_batch -> influence -> inverse_batch
        // -> interpolate pipeline vs the single-RHS pipeline per column.
        let params = PmeParams { mesh_dim: k, box_l: 10.0, r_max: 4.0, ..PmeParams::default() };
        let n = pos.len();
        let mut op = PmeOperator::new(&pos, params).unwrap();
        let mut y_batched = vec![0.0; 3 * n * s];
        op.recip_apply_add_multi(&x, &mut y_batched, s);
        let mut y_colwise = vec![0.0; 3 * n * s];
        for col in 0..s {
            op.recip_apply_add_column(&x, &mut y_colwise, s, col);
        }
        for i in 0..3 * n * s {
            prop_assert!((y_batched[i] - y_colwise[i]).abs() < 1e-12,
                "k={} s={} i={}: {} vs {}", k, s, i, y_batched[i], y_colwise[i]);
        }
    }
}
