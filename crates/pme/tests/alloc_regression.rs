//! Steady-state allocation regression tests for the PME operator.
//!
//! CLAUDE.md: "PmeOperator apply paths are allocation-free at steady state".
//! These tests install the counting allocator and hold the invariant to net
//! heap growth measured across all threads: after a warm-up apply has grown
//! the scratch, repeated applies must not leak a single persistent buffer.
//! (Transient allocations that free before the measurement ends — rayon's
//! injector blocks, worker-split scratch — net out by construction; the
//! lexical "no `vec!` in hot code at all" side is enforced by
//! `cargo run -p xtask -- audit`.)

use hibd_alloctrack::{exclusive, measure};
use hibd_mathx::Vec3;
use hibd_pme::{PmeOperator, PmeParams};

hibd_alloctrack::install!();

/// Slack for allocator-internal bookkeeping and lazily grown runtime
/// structures (thread-local caches, crossbeam queue blocks). A genuine
/// per-apply leak on these meshes is hundreds of kilobytes per apply.
const TOL: isize = 16 * 1024;

fn params() -> PmeParams {
    PmeParams {
        a: 1.0,
        eta: 1.0,
        box_l: 10.0,
        alpha: 0.8,
        mesh_dim: 32,
        spline_order: 6,
        r_max: 4.5,
    }
}

fn positions(n: usize, box_l: f64, seed: u64) -> Vec<Vec3> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64 * box_l
    };
    (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
}

fn vector(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

#[test]
fn single_rhs_apply_is_allocation_free_at_steady_state() {
    use hibd_linalg::LinearOperator;
    let _guard = exclusive();
    let n = 40;
    let p = params();
    let pos = positions(n, p.box_l, 1);
    let mut op = PmeOperator::new(&pos, p).unwrap();
    let x = vector(3 * n, 3);
    let mut y = vec![0.0; 3 * n];
    for _ in 0..2 {
        op.apply(&x, &mut y); // warm-up: grows mesh/spectrum scratch
    }
    let claimed = op.memory_bytes();
    let (m, ()) = measure(|| {
        for _ in 0..5 {
            op.apply(&x, &mut y);
        }
    });
    assert!(m.net_bytes.abs() <= TOL, "5 warm applies leaked {} net bytes", m.net_bytes);
    assert_eq!(op.memory_bytes(), claimed, "scratch grew after warm-up");
}

#[test]
fn block_apply_is_allocation_free_at_steady_state() {
    use hibd_linalg::LinearOperator;
    let _guard = exclusive();
    let n = 24;
    let s = 4;
    let p = params();
    let pos = positions(n, p.box_l, 11);
    let mut op = PmeOperator::new(&pos, p).unwrap();
    let x = vector(3 * n * s, 13);
    let mut y = vec![0.0; 3 * n * s];
    for _ in 0..2 {
        op.apply_multi(&x, &mut y, s); // warm-up: grows batch scratch
    }
    let claimed = op.memory_bytes();
    let (m, ()) = measure(|| {
        for _ in 0..5 {
            op.apply_multi(&x, &mut y, s);
        }
    });
    assert!(m.net_bytes.abs() <= TOL, "5 warm block applies leaked {} net bytes", m.net_bytes);
    assert_eq!(op.memory_bytes(), claimed);
}

#[test]
fn column_chunk_recip_apply_is_allocation_free_at_steady_state() {
    let _guard = exclusive();
    let n = 24;
    let s = 6;
    let width = 3;
    let p = params();
    let pos = positions(n, p.box_l, 21);
    let mut op = PmeOperator::new(&pos, p).unwrap();
    let x = vector(3 * n * s, 23);
    let mut y = vec![0.0; 3 * n * s];
    op.recip_apply_add_cols(&x, &mut y, s, 0, width);
    op.recip_apply_add_cols(&x, &mut y, s, width, width);
    let (m, ()) = measure(|| {
        for _ in 0..4 {
            op.recip_apply_add_cols(&x, &mut y, s, 0, width);
            op.recip_apply_add_cols(&x, &mut y, s, width, width);
        }
    });
    assert!(m.net_bytes.abs() <= TOL, "warm column chunks leaked {} net bytes", m.net_bytes);
}

#[test]
fn memory_bytes_accounts_for_measured_scratch_growth() {
    // The self-audit of the `memory_bytes` bookkeeping: growing the batch
    // scratch (first block apply after single-RHS warm-up) must raise the
    // *claimed* footprint by what the allocator *measured*, within
    // tolerance. A scratch buffer `memory_bytes` forgot to count shows up
    // here as measured >> claimed.
    use hibd_linalg::LinearOperator;
    let _guard = exclusive();
    let n = 24;
    let s = 8;
    let p = params();
    let pos = positions(n, p.box_l, 31);
    let mut op = PmeOperator::new(&pos, p).unwrap();
    let x1 = vector(3 * n, 33);
    let mut y1 = vec![0.0; 3 * n];
    op.apply(&x1, &mut y1); // grow the single-RHS scratch first
    let claimed_before = op.memory_bytes();
    let x = vector(3 * n * s, 35);
    let mut y = vec![0.0; 3 * n * s];
    let (m, ()) = measure(|| op.apply_multi(&x, &mut y, s));
    let claimed_delta = (op.memory_bytes() - claimed_before) as isize;
    assert!(claimed_delta > 0, "block apply should have grown batch scratch");
    assert!(
        (m.net_bytes - claimed_delta).abs() <= TOL,
        "allocator measured {} net bytes of growth but memory_bytes claims {claimed_delta}",
        m.net_bytes
    );
}
