//! Property tests for the influence-function square-root path (the PSE
//! sampler's precondition): over tuner-chosen `(K, p, alpha)` configs,
//! every scalar inside Beenakker's positivity region `|k| <= sqrt(3)/a` is
//! nonnegative as computed, clamping removes exactly the (exponentially
//! damped) negative tail beyond it, and `apply_sqrt` composed twice
//! reproduces `apply` to 1e-12.

use hibd_fft::Complex64;
use hibd_pme::influence::{fold, Influence};
use hibd_pme::tune;
use hibd_rpy::RpyEwald;
use proptest::prelude::*;
use std::f64::consts::TAU;

/// Deterministic spectrum filler (keeps the property pure).
fn synthetic_spectra(s_len: usize, salt: u64) -> Vec<Complex64> {
    let mut spec = vec![Complex64::ZERO; 3 * s_len];
    let mut x = salt | 1;
    for v in &mut spec {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let re = (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let im = (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        *v = Complex64::new(re, im);
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn influence_scalars_nonnegative_where_sqrt_needs_them(
        n in 16usize..220,
        phi in 0.05f64..0.35,
        ep in prop::sample::select(vec![1e-2f64, 1e-3]),
        salt in any::<u64>(),
    ) {
        let cfg = tune(n, phi, 1.0, 1.0, ep);
        let p = cfg.params;
        let ewald = RpyEwald::kernel_only(p.a, p.eta, p.box_l, p.alpha);
        let mut inf = Influence::new(&ewald, p.mesh_dim, p.spline_order);

        // (a) Inside |k| <= sqrt(3)/a the Beenakker kernel is positive, so
        // every mesh scalar there must be nonnegative as computed.
        let k = p.mesh_dim;
        let nc = k / 2 + 1;
        let kunit = TAU / p.box_l;
        let k2lim = 3.0 / (p.a * p.a);
        for k0 in 0..k {
            for k1 in 0..k {
                for k2 in 0..nc {
                    if k0 == 0 && k1 == 0 && k2 == 0 {
                        continue;
                    }
                    let f = [fold(k0, k) as f64, fold(k1, k) as f64, k2 as f64];
                    let k2norm = kunit * kunit * (f[0] * f[0] + f[1] * f[1] + f[2] * f[2]);
                    if k2norm <= k2lim {
                        let s = inf.scalar_at(k0, k1, k2);
                        prop_assert!(s >= 0.0, "negative scalar {s:e} at ({k0},{k1},{k2})");
                    }
                }
            }
        }

        // (b) Clamping leaves a nonnegative table. At PME-tuned alphas the
        // negative tail can even dominate the positive mass (the ratio is
        // unbounded, which is exactly why the PSE sampler runs its own
        // small xi) — only finiteness and sign are invariant here.
        let clipped = inf.clamp_nonnegative();
        prop_assert!(clipped.is_finite() && clipped >= 0.0, "clip ratio {clipped}");
        for (k0, k1, k2) in
            (0..k).flat_map(|a| (0..k).flat_map(move |b| (0..nc).map(move |c| (a, b, c))))
        {
            prop_assert!(inf.scalar_at(k0, k1, k2) >= 0.0);
        }

        // (b') In the PSE regime (small xi) on the same mesh, the clipped
        // tail really is negligible.
        let pse_ewald = RpyEwald::kernel_only(p.a, p.eta, p.box_l, 0.25 / p.a);
        let mut pse_inf = Influence::new(&pse_ewald, p.mesh_dim, p.spline_order);
        let pse_clipped = pse_inf.clamp_nonnegative();
        prop_assert!(pse_clipped < 1e-3, "PSE-regime clip ratio {pse_clipped}");

        // (c) sqrt composed twice = apply, to 1e-12 of the spectrum scale.
        let s_len = k * k * nc;
        let base = synthetic_spectra(s_len, salt);
        let mut twice = base.clone();
        inf.apply_sqrt(&mut twice);
        inf.apply_sqrt(&mut twice);
        let mut once = base;
        inf.apply(&mut once);
        let scale = once.iter().map(|c| c.abs()).fold(f64::MIN_POSITIVE, f64::max);
        for (a, b) in twice.iter().zip(&once) {
            prop_assert!((*a - *b).abs() <= 1e-12 * scale, "{a:?} vs {b:?}");
        }
    }
}
