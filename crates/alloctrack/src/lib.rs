//! `hibd-alloctrack`: a counting global allocator for steady-state
//! allocation regression tests.
//!
//! The PME/PSE apply paths promise to be allocation-free at steady state
//! (scratch is grown by `resize` and reused; see CLAUDE.md and DESIGN.md
//! "Invariants & audit tooling"). This crate turns that promise into a
//! failing test: install [`CountingAlloc`] as the global allocator of a test
//! binary with [`install!`], warm the operator up, then assert via
//! [`measure`] that repeated applies cause **zero net heap growth** across
//! all threads.
//!
//! ## Why *net* growth, not "zero `malloc` calls"
//!
//! Rayon's work distribution itself allocates: submitting a parallel job
//! from a non-pool thread pushes onto a `crossbeam` injector queue that
//! grows in 32-slot blocks, and `for_each_init` closures run once per work
//! split, so worker-side scratch (e.g. the FFT twiddle buffers) is
//! allocated and freed on every batched transform. Those transients are
//! real but bounded and they net out to ~zero; what the invariant forbids
//! is *monotone* growth — a `vec!` per apply that the allocator never gets
//! back, or scratch that `memory_bytes` fails to count. The tests therefore
//! assert `net_bytes` deltas (with a small tolerance for lazy runtime
//! initialization) rather than intercepting individual calls, and the
//! lexical side — "no `vec!` in a `#[hibd::hot]` body at all" — is enforced
//! separately by `cargo run -p xtask -- audit`.
//!
//! Counters are process-global atomics, so tests that measure must hold the
//! [`exclusive`] lock to keep other tests in the same binary from polluting
//! the deltas.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use hibd_linalg::LinearOperator;

/// Net live heap bytes since process start (allocs minus deallocs).
static NET_BYTES: AtomicIsize = AtomicIsize::new(0);
/// High-water mark of [`NET_BYTES`]; reset with [`reset_peak`].
static PEAK_BYTES: AtomicIsize = AtomicIsize::new(0);
/// Total number of allocation calls (allocs + grow side of reallocs).
static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

fn record_alloc(size: usize) {
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    let net = NET_BYTES.fetch_add(size as isize, Ordering::Relaxed) + size as isize;
    PEAK_BYTES.fetch_max(net, Ordering::Relaxed);
}

fn record_dealloc(size: usize) {
    NET_BYTES.fetch_sub(size as isize, Ordering::Relaxed);
}

/// A [`System`]-delegating allocator that keeps process-global counts of net
/// live bytes, the high-water mark, and the number of allocation calls.
///
/// The bookkeeping is a handful of relaxed atomic ops per call and never
/// allocates itself, so it is safe to install unconditionally in test
/// binaries (the perf cost is negligible next to `System`).
pub struct CountingAlloc;

// SAFETY: every method delegates the actual memory management to `System`
// (which upholds the `GlobalAlloc` contract) and only adds atomic counter
// updates, which cannot affect the returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded verbatim; the caller upholds `layout` validity.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded verbatim; the caller upholds `layout` validity.
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; the caller guarantees `ptr` came from
        // this allocator with this `layout`.
        unsafe { System.dealloc(ptr, layout) };
        record_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: forwarded verbatim; the caller guarantees `ptr`/`layout`
        // validity and a nonzero rounded `new_size`.
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            // Count as free(old) + alloc(new) so `net_bytes` tracks live
            // bytes exactly (a shrink records negative growth).
            record_dealloc(layout.size());
            record_alloc(new_size);
        }
        new_ptr
    }
}

/// Installs [`CountingAlloc`] as the `#[global_allocator]` of the current
/// binary. Invoke once at the top of each test file that measures.
#[macro_export]
macro_rules! install {
    () => {
        #[global_allocator]
        static HIBD_COUNTING_ALLOC: $crate::CountingAlloc = $crate::CountingAlloc;
    };
}

/// Net live heap bytes right now (allocations minus deallocations since
/// process start). Only meaningful when [`install!`] is in effect.
pub fn net_bytes() -> isize {
    NET_BYTES.load(Ordering::Relaxed)
}

/// Number of allocation calls since process start.
pub fn alloc_calls() -> usize {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// High-water mark of [`net_bytes`] since process start or the last
/// [`reset_peak`].
pub fn peak_bytes() -> isize {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current net, so the next
/// [`peak_bytes`] reading reflects only what happens afterwards.
pub fn reset_peak() {
    PEAK_BYTES.store(NET_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Serializes measuring tests within a binary: the counters are process
/// global, so concurrent tests would pollute each other's deltas.
pub fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    // A panicking measurement test must not poison every later one.
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// What happened to the heap across a [`measure`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Measurement {
    /// Net live-byte growth: allocated minus freed, all threads.
    pub net_bytes: isize,
    /// Number of allocation calls (transients included).
    pub alloc_calls: usize,
    /// Highest net growth above the starting point reached at any moment
    /// during the call (the closure's true scratch footprint).
    pub peak_bytes: isize,
}

/// Runs `f` and reports the heap delta it caused across **all** threads.
///
/// Callers that assert on the result must hold [`exclusive`] around the
/// whole warm-up + measure sequence.
pub fn measure<R>(f: impl FnOnce() -> R) -> (Measurement, R) {
    reset_peak();
    let net0 = net_bytes();
    let calls0 = alloc_calls();
    let out = f();
    let m = Measurement {
        net_bytes: net_bytes() - net0,
        alloc_calls: alloc_calls() - calls0,
        peak_bytes: peak_bytes() - net0,
    };
    (m, out)
}

/// A [`LinearOperator`] decorator that measures the heap effect of every
/// `apply`/`apply_multi` it forwards, accumulating totals.
///
/// Used by the Krylov regression tests: wrap the PME operator, run block
/// Lanczos once to warm scratch, [`AllocCheckedOp::reset`], run again, and
/// assert [`AllocCheckedOp::total_net_bytes`] stayed ~zero — i.e. the
/// operator applies inside the iteration are allocation-free even though
/// the surrounding Lanczos bookkeeping is not.
pub struct AllocCheckedOp<Op> {
    inner: Op,
    applies: usize,
    total_net_bytes: isize,
    max_apply_net_bytes: isize,
}

impl<Op: LinearOperator> AllocCheckedOp<Op> {
    pub fn new(inner: Op) -> Self {
        AllocCheckedOp { inner, applies: 0, total_net_bytes: 0, max_apply_net_bytes: 0 }
    }

    /// Clears the accumulated statistics (e.g. after a warm-up pass).
    pub fn reset(&mut self) {
        self.applies = 0;
        self.total_net_bytes = 0;
        self.max_apply_net_bytes = 0;
    }

    /// Number of forwarded applies since the last [`AllocCheckedOp::reset`].
    pub fn applies(&self) -> usize {
        self.applies
    }

    /// Summed net heap growth across all forwarded applies.
    pub fn total_net_bytes(&self) -> isize {
        self.total_net_bytes
    }

    /// Largest single-apply net heap growth observed.
    pub fn max_apply_net_bytes(&self) -> isize {
        self.max_apply_net_bytes
    }

    pub fn into_inner(self) -> Op {
        self.inner
    }

    fn record(&mut self, m: Measurement) {
        self.applies += 1;
        self.total_net_bytes += m.net_bytes;
        self.max_apply_net_bytes = self.max_apply_net_bytes.max(m.net_bytes);
    }
}

impl<Op: LinearOperator> LinearOperator for AllocCheckedOp<Op> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        let inner = &mut self.inner;
        let (m, ()) = measure(|| inner.apply(x, y));
        self.record(m);
    }

    fn apply_multi(&mut self, x: &[f64], y: &mut [f64], s: usize) {
        let inner = &mut self.inner;
        let (m, ()) = measure(|| inner.apply_multi(x, y, s));
        self.record(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hibd_linalg::{DMat, DenseOp};

    // Unit tests of the *arithmetic*; the allocator itself is exercised by
    // the integration suites in pme/krylov/pse/core, whose binaries install
    // it globally.
    #[test]
    fn measurement_arithmetic_nets_out() {
        let _guard = exclusive();
        let (m, v) = measure(|| std::hint::black_box(vec![0u8; 4096]));
        drop(v);
        // Without `install!` in this (unit-test) binary the counters are
        // inert; all we can assert is internal consistency.
        assert!(m.peak_bytes >= m.net_bytes);
    }

    #[test]
    fn checked_op_forwards_and_counts() {
        let m = DMat::from_fn(4, 4, |i, j| if i == j { 2.0 } else { 0.0 });
        let mut op = AllocCheckedOp::new(DenseOp::new(m));
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 4];
        op.apply(&x, &mut y);
        assert_eq!(y, [2.0, 4.0, 6.0, 8.0]);
        assert_eq!(op.applies(), 1);
        op.reset();
        assert_eq!(op.applies(), 0);
        assert_eq!(op.total_net_bytes(), 0);
    }
}
