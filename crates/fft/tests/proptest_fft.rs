//! Property-based tests of the FFT substrate.

use hibd_fft::dft::{dft_forward, dft_inverse};
use hibd_fft::{Complex64, FftPlan, RealFftPlan};
use proptest::prelude::*;

/// Supported smooth sizes used in practice.
fn smooth_sizes() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![2usize, 3, 4, 6, 8, 10, 12, 16, 20, 24, 30, 32, 40, 48, 60, 64])
}

fn signal(n: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_recovers_input((n, raw) in smooth_sizes().prop_flat_map(|n| (Just(n), signal(n)))) {
        let plan = FftPlan::new(n).unwrap();
        let x: Vec<Complex64> = raw.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        let mut y = x.clone();
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
        plan.forward(&mut y, &mut scratch);
        plan.inverse(&mut y, &mut scratch);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((b.scale(1.0 / n as f64) - *a).abs() < 1e-11);
        }
    }

    #[test]
    fn matches_naive_dft((n, raw) in smooth_sizes().prop_flat_map(|n| (Just(n), signal(n)))) {
        let plan = FftPlan::new(n).unwrap();
        let x: Vec<Complex64> = raw.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        let want = dft_forward(&x);
        let mut got = x.clone();
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
        plan.forward(&mut got, &mut scratch);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_conservation((n, raw) in smooth_sizes().prop_flat_map(|n| (Just(n), signal(n)))) {
        let plan = FftPlan::new(n).unwrap();
        let x: Vec<Complex64> = raw.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        let e_time: f64 = x.iter().map(|v| v.norm2()).sum();
        let mut y = x;
        let mut scratch = vec![Complex64::ZERO; n];
        plan.forward(&mut y, &mut scratch);
        let e_freq: f64 = y.iter().map(|v| v.norm2()).sum::<f64>() / n as f64;
        prop_assert!((e_time - e_freq).abs() <= 1e-10 * e_time.max(1.0));
    }

    #[test]
    fn inverse_matches_naive_inverse((n, raw) in smooth_sizes().prop_flat_map(|n| (Just(n), signal(n)))) {
        let plan = FftPlan::new(n).unwrap();
        let x: Vec<Complex64> = raw.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        let want = dft_inverse(&x);
        let mut got = x;
        let mut scratch = vec![Complex64::ZERO; n];
        plan.inverse(&mut got, &mut scratch);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn real_transform_agrees_with_complex_transform(
        (n, raw) in prop::sample::select(vec![2usize, 4, 6, 8, 12, 16, 20, 32, 48, 64])
            .prop_flat_map(|n| (Just(n), prop::collection::vec(-1.0f64..1.0, n)))
    ) {
        let rplan = RealFftPlan::new(n).unwrap();
        let cplan = FftPlan::new(n).unwrap();
        let mut cx: Vec<Complex64> = raw.iter().map(|&r| Complex64::from(r)).collect();
        let mut scratch = vec![Complex64::ZERO; n];
        cplan.forward(&mut cx, &mut scratch);

        let mut half = vec![Complex64::ZERO; rplan.spectrum_len()];
        let mut rscratch = vec![Complex64::ZERO; rplan.scratch_len()];
        rplan.forward(&raw, &mut half, &mut rscratch);
        for k in 0..=n / 2 {
            prop_assert!((half[k] - cx[k]).abs() < 1e-10, "k={}", k);
        }
    }
}
