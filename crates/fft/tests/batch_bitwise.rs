//! The batch transforms must be *bitwise* identical, mesh for mesh, to the
//! single-mesh transforms — not merely close. The ensemble engine
//! (`hibd-engine`) relies on this: replica drifts computed through one
//! `forward_batch`/`inverse_batch` round trip over `3R` concatenated meshes
//! must reproduce a standalone run's per-replica `forward`/`inverse` calls
//! exactly, or replica trajectories would diverge from their standalone
//! seeded twins. Both paths visit each line with the same plan and the same
//! per-line arithmetic; only the outer partitioning differs, and this test
//! pins that equivalence down to the last bit.

use hibd_fft::{Complex64, Fft3};

fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    move || {
        state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }
}

fn check_dims(dims: [usize; 3], batch: usize) {
    let fft = Fft3::new(dims).unwrap();
    let nreal = fft.real_len();
    let nspec = fft.spectrum_len();
    let mut next = lcg(dims[0] as u64 * 1000 + batch as u64);
    let reals: Vec<f64> = (0..batch * nreal).map(|_| next()).collect();

    let mut batch_spec = vec![Complex64::ZERO; batch * nspec];
    fft.forward_batch(&reals, &mut batch_spec, batch);

    let mut single_spec = vec![Complex64::ZERO; nspec];
    for b in 0..batch {
        fft.forward(&reals[b * nreal..(b + 1) * nreal], &mut single_spec);
        for (i, (got, want)) in
            batch_spec[b * nspec..(b + 1) * nspec].iter().zip(&single_spec).enumerate()
        {
            assert!(
                got.re.to_bits() == want.re.to_bits() && got.im.to_bits() == want.im.to_bits(),
                "forward dims {dims:?} batch {batch} mesh {b} bin {i}: {got:?} != {want:?}"
            );
        }
    }

    let mut batch_out = vec![0.0f64; batch * nreal];
    let mut batch_spec2 = batch_spec.clone();
    fft.inverse_batch(&mut batch_spec2, &mut batch_out, batch);

    let mut single_out = vec![0.0f64; nreal];
    for b in 0..batch {
        let mut spec = batch_spec[b * nspec..(b + 1) * nspec].to_vec();
        fft.inverse(&mut spec, &mut single_out);
        for (i, (got, want)) in
            batch_out[b * nreal..(b + 1) * nreal].iter().zip(&single_out).enumerate()
        {
            assert!(
                got.to_bits() == want.to_bits(),
                "inverse dims {dims:?} batch {batch} mesh {b} cell {i}: {got} != {want}"
            );
        }
    }
}

#[test]
fn batch_transforms_are_bitwise_identical_to_single_mesh() {
    for dims in [[8usize, 8, 8], [12, 12, 12], [6, 10, 8], [16, 16, 16]] {
        for batch in [1usize, 2, 3, 6, 12] {
            check_dims(dims, batch);
        }
    }
}

#[test]
fn batch_width_does_not_change_per_mesh_bits() {
    // Widths 3 and 3R must agree mesh-for-mesh on the shared prefix: the
    // engine batches `3R` meshes where a standalone operator batches 3.
    let fft = Fft3::new([12, 12, 12]).unwrap();
    let (nreal, nspec) = (fft.real_len(), fft.spectrum_len());
    let mut next = lcg(77);
    let reals: Vec<f64> = (0..12 * nreal).map(|_| next()).collect();
    let mut wide = vec![Complex64::ZERO; 12 * nspec];
    fft.forward_batch(&reals, &mut wide, 12);
    let mut narrow = vec![Complex64::ZERO; 3 * nspec];
    for g in 0..4 {
        fft.forward_batch(&reals[g * 3 * nreal..(g + 1) * 3 * nreal], &mut narrow, 3);
        assert!(
            wide[g * 3 * nspec..(g + 1) * 3 * nspec].iter().zip(&narrow).all(|(a, b)| a
                .re
                .to_bits()
                == b.re.to_bits()
                && a.im.to_bits() == b.im.to_bits()),
            "forward_batch width 12 group {g} differs from width 3"
        );
    }
}
