//! Scalar-vs-SIMD equivalence for the FFT combine kernels.
//!
//! The AVX2 combine stages fuse multiplies into FMAs, so they are not bitwise
//! identical to the scalar fallback; the contract is <= 1e-13 relative error
//! against the scalar path (which *is* the bitwise-unchanged pre-SIMD loop).
//! The `hibd_simd` override is process-global, so every test that toggles it
//! serializes on `SIMD_LOCK`. On hosts without AVX2+FMA both runs take the
//! scalar path and the comparison is trivially exact.

use hibd_fft::{next_smooth_even, Complex64, Fft3, FftPlan};
use proptest::prelude::*;
use std::sync::Mutex;

static SIMD_LOCK: Mutex<()> = Mutex::new(());

/// Sizes whose plans emit every vectorized combine radix — first factor 4
/// (16, 32, ...), 2 (18, 50), 3 (27, 45), 5 (125) with sub-size `m >= 4` —
/// plus rough lengths whose Bluestein fallback runs the same kernels on its
/// smooth inner transform (17, 23, 97, 257).
const SIZES: &[usize] =
    &[16, 18, 24, 27, 32, 45, 48, 50, 60, 64, 80, 100, 125, 128, 200, 400, 17, 23, 97, 257];

fn max_mag(xs: &[Complex64]) -> f64 {
    xs.iter().map(|v| v.abs()).fold(0.0, f64::max)
}

/// Runs `f` once under the forced-scalar override and once with
/// auto-detection, holding the process-global lock across both.
fn scalar_then_auto<R>(f: impl Fn() -> R) -> (R, R) {
    let _l = SIMD_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let scalar = {
        let _g = hibd_simd::ScalarGuard::new();
        f()
    };
    (scalar, f())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn forward_matches_scalar(
        (n, raw) in prop::sample::select(SIZES.to_vec())
            .prop_flat_map(|n| (Just(n), prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), n)))
    ) {
        let plan = FftPlan::new(n).unwrap();
        let x: Vec<Complex64> = raw.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        let (scalar, auto) = scalar_then_auto(|| {
            let mut y = x.clone();
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.forward(&mut y, &mut scratch);
            y
        });
        let tol = 1e-13 * max_mag(&scalar).max(1.0);
        for (a, b) in auto.iter().zip(&scalar) {
            prop_assert!((*a - *b).abs() <= tol, "n={n}: {} vs {}", a.re, b.re);
        }
    }

    #[test]
    fn inverse_matches_scalar(
        (n, raw) in prop::sample::select(SIZES.to_vec())
            .prop_flat_map(|n| (Just(n), prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), n)))
    ) {
        let plan = FftPlan::new(n).unwrap();
        let x: Vec<Complex64> = raw.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        let (scalar, auto) = scalar_then_auto(|| {
            let mut y = x.clone();
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.inverse(&mut y, &mut scratch);
            y
        });
        let tol = 1e-13 * max_mag(&scalar).max(1.0);
        for (a, b) in auto.iter().zip(&scalar) {
            prop_assert!((*a - *b).abs() <= tol, "n={n}");
        }
    }
}

#[test]
fn fft3_single_and_batch_match_scalar_path() {
    // Dims chosen so every 1D plan has a vector-eligible combine stage
    // (16 = 4*4, 18 = 2*9, 20 = 4*5).
    let dims = [16, 18, 20];
    let fft = Fft3::new(dims).unwrap();
    let nreal = dims[0] * dims[1] * dims[2];
    let batch = 3;
    let mut state = 0x1234_5678_u64;
    let reals: Vec<f64> = (0..batch * nreal)
        .map(|_| {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect();

    let (scalar, auto) = scalar_then_auto(|| {
        let mut spec1 = vec![Complex64::ZERO; fft.spectrum_len()];
        fft.forward(&reals[..nreal], &mut spec1);
        let mut specb = vec![Complex64::ZERO; batch * fft.spectrum_len()];
        fft.forward_batch(&reals, &mut specb, batch);
        let mut back = vec![0.0; batch * nreal];
        fft.inverse_batch(&mut specb.clone(), &mut back, batch);
        (spec1, specb, back)
    });

    let tol = 1e-13 * max_mag(&scalar.1).max(1.0);
    for (a, b) in auto.0.iter().zip(&scalar.0) {
        assert!((*a - *b).abs() <= tol, "single-mesh spectrum diverged");
    }
    for (a, b) in auto.1.iter().zip(&scalar.1) {
        assert!((*a - *b).abs() <= tol, "batch spectrum diverged");
    }
    let rtol = 1e-13 * scalar.2.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
    for (a, b) in auto.2.iter().zip(&scalar.2) {
        assert!((a - b).abs() <= rtol, "batch roundtrip diverged");
    }
}

#[test]
fn bluestein_inner_length_is_next_smooth_even() {
    // The chirp-z convolution accepts any inner length >= 2n - 1; the plan
    // must pick the next *smooth even* length, not the next power of two.
    assert_eq!(FftPlan::new(17).unwrap().bluestein_inner_len(), Some(36)); // not 64
    assert_eq!(FftPlan::new(97).unwrap().bluestein_inner_len(), Some(196)); // not 256
    assert_eq!(FftPlan::new(257).unwrap().bluestein_inner_len(), Some(520)); // not 1024
    for &n in &[17usize, 19, 23, 97, 101, 257] {
        let m = FftPlan::new(n).unwrap().bluestein_inner_len().unwrap();
        assert_eq!(m, next_smooth_even(2 * n - 1), "n={n}");
        assert!(m >= 2 * n - 1 && m.is_multiple_of(2), "n={n} inner {m}");
    }
    // Smooth sizes never take the fallback.
    assert_eq!(FftPlan::new(400).unwrap().bluestein_inner_len(), None);
}
