//! Allocation regression for the 1D FFT plan applies.
//!
//! `FftPlan::forward`/`inverse` take caller-provided scratch and must not
//! touch the heap at all — the SIMD combine layer stages twiddles in
//! precomputed SoA tables and works in registers, so there is no "warm-up"
//! to excuse: the assertion is zero allocator calls, not just zero net
//! bytes. (The 3D `Fft3` transforms allocate per-worker line scratch by
//! design and are covered by the PME operator steady-state tests instead.)

use hibd_alloctrack::{exclusive, measure};
use hibd_fft::{Complex64, FftPlan, RealFftPlan};

hibd_alloctrack::install!();

fn signal(n: usize, seed: u64) -> Vec<Complex64> {
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let re = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let im = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            Complex64::new(re, im)
        })
        .collect()
}

#[test]
fn complex_plan_apply_never_allocates() {
    let _guard = exclusive();
    // One-time dispatch detection reads HIBD_SIMD (allocates when the
    // variable is set) — keep it outside the measurement window.
    hibd_simd::avx2();
    // Smooth sizes covering every SIMD radix, plus a Bluestein length.
    for &n in &[16usize, 18, 27, 60, 125, 400, 97] {
        let plan = FftPlan::new(n).unwrap();
        let mut data = signal(n, n as u64);
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
        let (m, ()) = measure(|| {
            for _ in 0..3 {
                plan.forward(&mut data, &mut scratch);
                plan.inverse(&mut data, &mut scratch);
            }
        });
        assert_eq!(m.alloc_calls, 0, "n={n}: plan apply made {} allocations", m.alloc_calls);
        assert_eq!(m.net_bytes, 0, "n={n}: plan apply leaked {} bytes", m.net_bytes);
    }
}

#[test]
fn real_plan_apply_never_allocates() {
    let _guard = exclusive();
    // One-time dispatch detection reads HIBD_SIMD (allocates when the
    // variable is set) — keep it outside the measurement window.
    hibd_simd::avx2();
    for &n in &[16usize, 20, 48, 64] {
        let plan = RealFftPlan::new(n).unwrap();
        let real: Vec<f64> = signal(n, 7 * n as u64).iter().map(|c| c.re).collect();
        let mut half = vec![Complex64::ZERO; plan.spectrum_len()];
        let mut out = vec![0.0f64; n];
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
        let (m, ()) = measure(|| {
            for _ in 0..3 {
                plan.forward(&real, &mut half, &mut scratch);
                plan.inverse(&half, &mut out, &mut scratch);
            }
        });
        assert_eq!(m.alloc_calls, 0, "n={n}: real plan apply made {} allocations", m.alloc_calls);
        assert_eq!(m.net_bytes, 0, "n={n}: real plan apply leaked {} bytes", m.net_bytes);
    }
}
