//! Naive `O(n^2)` discrete Fourier transforms.
//!
//! Reference implementations used by the test suites of [`crate::plan`],
//! [`crate::real`] and [`crate::fft3`]; also handy for validating the PME
//! reciprocal sum on tiny meshes. Never used on a hot path.

use crate::complex::Complex64;
use std::f64::consts::TAU;

/// Naive forward DFT: `X[k] = Σ_j x[j] e^{-2 pi i jk/n}`.
pub fn dft_forward(x: &[Complex64]) -> Vec<Complex64> {
    dft(x, -1.0)
}

/// Naive unnormalized inverse DFT: `y[j] = Σ_k X[k] e^{+2 pi i jk/n}`.
pub fn dft_inverse(x: &[Complex64]) -> Vec<Complex64> {
    dft(x, 1.0)
}

fn dft(x: &[Complex64], sign: f64) -> Vec<Complex64> {
    let n = x.len();
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &v) in x.iter().enumerate() {
            // Reduce j*k mod n before the trig call to keep the angle small.
            let phase = sign * TAU * ((j * k) % n) as f64 / n as f64;
            acc += v * Complex64::cis(phase);
        }
        *o = acc;
    }
    out
}

/// Naive forward DFT of a real sequence, returning the full spectrum.
pub fn dft_forward_real(x: &[f64]) -> Vec<Complex64> {
    let cx: Vec<Complex64> = x.iter().map(|&v| Complex64::from(v)).collect();
    dft_forward(&cx)
}

/// Naive 3D forward DFT of a real array with dims `[n0][n1][n2]` (`n2`
/// fastest), returning the full `n0*n1*n2` complex spectrum in the same
/// layout.
pub fn dft3_forward_real(x: &[f64], dims: [usize; 3]) -> Vec<Complex64> {
    let [n0, n1, n2] = dims;
    assert_eq!(x.len(), n0 * n1 * n2);
    let mut out = vec![Complex64::ZERO; n0 * n1 * n2];
    for k0 in 0..n0 {
        for k1 in 0..n1 {
            for k2 in 0..n2 {
                let mut acc = Complex64::ZERO;
                for j0 in 0..n0 {
                    for j1 in 0..n1 {
                        for j2 in 0..n2 {
                            let phase = -TAU * (j0 * k0) as f64 / n0 as f64
                                - TAU * (j1 * k1) as f64 / n1 as f64
                                - TAU * (j2 * k2) as f64 / n2 as f64;
                            acc += Complex64::cis(phase).scale(x[(j0 * n1 + j1) * n2 + j2]);
                        }
                    }
                }
                out[(k0 * n1 + k1) * n2 + k2] = acc;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dft_of_delta_is_flat() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        let s = dft_forward(&x);
        for v in s {
            assert!((v - Complex64::ONE).abs() < 1e-14);
        }
    }

    #[test]
    fn dft_of_constant_is_delta() {
        let x = vec![Complex64::ONE; 6];
        let s = dft_forward(&x);
        assert!((s[0] - Complex64::from(6.0)).abs() < 1e-13);
        for v in &s[1..] {
            assert!(v.abs() < 1e-13);
        }
    }

    #[test]
    fn inverse_of_forward_scales_by_n() {
        let x: Vec<Complex64> =
            (0..10).map(|i| Complex64::new((i as f64).sin(), (i as f64).cos())).collect();
        let y = dft_inverse(&dft_forward(&x));
        for (a, b) in x.iter().zip(&y) {
            assert!((b.scale(0.1) - *a).abs() < 1e-12);
        }
    }

    #[test]
    fn real_input_has_hermitian_spectrum() {
        let x: Vec<f64> = (0..12).map(|i| (0.3 * i as f64).sin() + 0.1 * i as f64).collect();
        let s = dft_forward_real(&x);
        for k in 1..12 {
            let d = s[k] - s[12 - k].conj();
            assert!(d.abs() < 1e-12, "k={k}");
        }
    }
}
