//! Lane-batched FFT kernels: four meshes per transform.
//!
//! [`crate::Fft3::forward_batch`] groups its meshes in fours and runs each 1D
//! line transform on a [`C4`] "lane bundle" — the same line of four meshes
//! moving through the mixed-radix recursion together (the batched "3D FFTs
//! for blocks of vectors" of the paper's Section III-B). The twiddle factor
//! at each step is one scalar shared by all four lanes, so the lane kernels
//! replace the per-mesh deinterleave/permute traffic with broadcast
//! multiplies and turn the `O(r^2)` generic-radix leaves into 4-wide vector
//! arithmetic — work the per-mesh path has no independent data to fill a
//! register with.
//!
//! Bitwise contract: every lane of a lane-batched transform must be *bitwise
//! identical* to the per-mesh transform of that mesh (ensemble replicas are
//! compared bitwise against standalone runs). Each helper here therefore
//! mirrors the expression tree of its per-mesh counterpart exactly, branch
//! for branch: the scalar trees from `plan.rs`/`real.rs` everywhere, except
//! the radix-2/3/4/5 combine body over `k < m & !3`, which mirrors
//! `combine_avx2`'s FMA tree when (and only when) `hibd_simd::avx2()` holds
//! — the identical dispatch condition the per-mesh path uses. The generic
//! leaf may use AVX2 `mul`/`add` vectors freely because those are lanewise
//! IEEE ops with the same rounding as the scalar loop; `mul`/`add`
//! commutativity makes the remaining operand swaps value-preserving.
//! Equivalence is pinned by the bitwise batch tests in `fft3.rs`.

use crate::complex::Complex64;
use crate::plan::{Direction, FftPlan, MAX_RADIX};
use crate::real::RealFftPlan;
use hibd_hot as hibd;

/// Meshes per lane group.
pub(crate) const LANES: usize = 4;

// Butterfly constants; must match the scalar kernels in `plan.rs` and the
// AVX2 kernels in `simd.rs`.
const HALF_SQRT3: f64 = 0.866_025_403_784_438_6;
const C1: f64 = 0.309_016_994_374_947_45;
const S1: f64 = 0.951_056_516_295_153_5;
const C2: f64 = -0.809_016_994_374_947_5;
const S2: f64 = 0.587_785_252_292_473_1;

/// Four complex values in structure-of-arrays form; lane `l` holds mesh `l`
/// of a lane group. Each `[f64; 4]` field is exactly one AVX register wide.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct C4 {
    pub re: [f64; LANES],
    pub im: [f64; LANES],
}

impl C4 {
    pub(crate) const ZERO: C4 = C4 { re: [0.0; LANES], im: [0.0; LANES] };
}

// Lanewise mirrors of the `Complex64` operation trees (`complex.rs`). Plain
// `mul`/`add`/`sub` only — `mul_add` would change the rounding and break the
// bitwise contract (Rust never contracts float expressions on its own).

#[inline(always)]
fn add4(a: C4, b: C4) -> C4 {
    let mut o = C4::ZERO;
    for l in 0..LANES {
        o.re[l] = a.re[l] + b.re[l];
        o.im[l] = a.im[l] + b.im[l];
    }
    o
}

#[inline(always)]
fn sub4(a: C4, b: C4) -> C4 {
    let mut o = C4::ZERO;
    for l in 0..LANES {
        o.re[l] = a.re[l] - b.re[l];
        o.im[l] = a.im[l] - b.im[l];
    }
    o
}

#[inline(always)]
fn scale4(a: C4, s: f64) -> C4 {
    let mut o = C4::ZERO;
    for l in 0..LANES {
        o.re[l] = a.re[l] * s;
        o.im[l] = a.im[l] * s;
    }
    o
}

#[inline(always)]
fn conj4(a: C4) -> C4 {
    let mut o = C4::ZERO;
    for l in 0..LANES {
        o.re[l] = a.re[l];
        o.im[l] = -a.im[l];
    }
    o
}

/// `i * z` lanewise: `(-im, re)`.
#[inline(always)]
fn mul_i4(a: C4) -> C4 {
    let mut o = C4::ZERO;
    for l in 0..LANES {
        o.re[l] = -a.im[l];
        o.im[l] = a.re[l];
    }
    o
}

/// `-i * z` lanewise: `(im, -re)`.
#[inline(always)]
fn mul_neg_i4(a: C4) -> C4 {
    let mut o = C4::ZERO;
    for l in 0..LANES {
        o.re[l] = a.im[l];
        o.im[l] = -a.re[l];
    }
    o
}

/// Lanewise `z * w` with the `Complex64::mul` tree. Also used where the
/// per-mesh code computes `w * z`: IEEE `mul` and `add` are commutative
/// bitwise, so both operand orders yield the same bits.
#[inline(always)]
fn mulw(z: C4, w: Complex64) -> C4 {
    let mut o = C4::ZERO;
    for l in 0..LANES {
        o.re[l] = z.re[l] * w.re - z.im[l] * w.im;
        o.im[l] = z.re[l] * w.im + z.im[l] * w.re;
    }
    o
}

/// Lane mirror of `plan::butterfly_into`: `out[s] = Σ_q t[q] e^{∓2 pi i qs/r}`
/// per lane, expression tree matched arm for arm.
pub(crate) fn butterfly4_into(t: &[C4], out: &mut [C4], dir: Direction, gen: &[Complex64]) {
    let inv = dir == Direction::Inverse;
    match t.len() {
        1 => out[0] = t[0],
        2 => {
            out[0] = add4(t[0], t[1]);
            out[1] = sub4(t[0], t[1]);
        }
        3 => {
            let s = add4(t[1], t[2]);
            let d = sub4(t[1], t[2]);
            let m1 = sub4(t[0], scale4(s, 0.5));
            let m2 =
                if inv { scale4(mul_i4(d), HALF_SQRT3) } else { scale4(mul_neg_i4(d), HALF_SQRT3) };
            out[0] = add4(t[0], s);
            out[1] = add4(m1, m2);
            out[2] = sub4(m1, m2);
        }
        4 => {
            let a = add4(t[0], t[2]);
            let b = sub4(t[0], t[2]);
            let c = add4(t[1], t[3]);
            let d = sub4(t[1], t[3]);
            let id = if inv { mul_i4(d) } else { mul_neg_i4(d) };
            out[0] = add4(a, c);
            out[1] = add4(b, id);
            out[2] = sub4(a, c);
            out[3] = sub4(b, id);
        }
        5 => {
            let a = add4(t[1], t[4]);
            let b = sub4(t[1], t[4]);
            let c = add4(t[2], t[3]);
            let d = sub4(t[2], t[3]);
            let sgn = if inv { 1.0 } else { -1.0 };
            let re1 = add4(add4(t[0], scale4(a, C1)), scale4(c, C2));
            let im1 = scale4(mul_i4(add4(scale4(b, S1), scale4(d, S2))), sgn);
            let re2 = add4(add4(t[0], scale4(a, C2)), scale4(c, C1));
            let im2 = scale4(mul_i4(sub4(scale4(b, S2), scale4(d, S1))), sgn);
            out[0] = add4(add4(t[0], a), c);
            out[1] = add4(re1, im1);
            out[2] = add4(re2, im2);
            out[3] = sub4(re2, im2);
            out[4] = sub4(re1, im1);
        }
        r => {
            debug_assert_eq!(gen.len(), r, "generic butterfly needs its twiddle table");
            #[cfg(target_arch = "x86_64")]
            if hibd_simd::avx2() {
                // SAFETY: `hibd_simd::avx2()` returns true only after runtime
                // detection of the avx2 (and fma) target features.
                unsafe { generic4_avx2(t, out, gen) };
                return;
            }
            generic4_scalar(t, out, gen);
        }
    }
}

/// Generic-radix lane leaf, scalar loop: the exact accumulation tree of the
/// per-mesh generic butterfly, run per lane.
fn generic4_scalar(t: &[C4], out: &mut [C4], gen: &[Complex64]) {
    let r = t.len();
    for (s, o) in out.iter_mut().enumerate() {
        let mut acc = C4::ZERO;
        for (q, &v) in t.iter().enumerate() {
            acc = add4(acc, mulw(v, gen[(q * s) % r]));
        }
        *o = acc;
    }
}

/// Generic-radix lane leaf with AVX2 vectors. Uses only lanewise
/// `mul`/`add`/`sub` (no FMA), so every lane is bitwise identical to
/// [`generic4_scalar`] — this path is a pure speedup, legal under either
/// `HIBD_SIMD` leg.
///
/// # Safety
/// The caller must ensure the CPU supports the `avx2` target feature
/// (runtime-detected via `hibd_simd::avx2()`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn generic4_avx2(t: &[C4], out: &mut [C4], gen: &[Complex64]) {
    use core::arch::x86_64::*;
    let r = t.len();
    for (s, o) in out.iter_mut().enumerate() {
        let mut ar = _mm256_setzero_pd();
        let mut ai = _mm256_setzero_pd();
        for (q, v) in t.iter().enumerate() {
            let g = gen[(q * s) % r];
            let gr = _mm256_set1_pd(g.re);
            let gi = _mm256_set1_pd(g.im);
            // SAFETY: `[f64; LANES]` is 4 contiguous f64s; in-bounds load.
            let vr = unsafe { _mm256_loadu_pd(v.re.as_ptr()) };
            // SAFETY: as above.
            let vi = unsafe { _mm256_loadu_pd(v.im.as_ptr()) };
            // acc += v * g with the scalar tree: re += vr*gr - vi*gi,
            // im += vr*gi + vi*gr (plain ops, same rounding as scalar).
            ar = _mm256_add_pd(ar, _mm256_sub_pd(_mm256_mul_pd(vr, gr), _mm256_mul_pd(vi, gi)));
            ai = _mm256_add_pd(ai, _mm256_add_pd(_mm256_mul_pd(vr, gi), _mm256_mul_pd(vi, gr)));
        }
        // SAFETY: in-bounds stores into the 4-lane arrays.
        unsafe { _mm256_storeu_pd(o.re.as_mut_ptr(), ar) };
        // SAFETY: as above.
        unsafe { _mm256_storeu_pd(o.im.as_mut_ptr(), ai) };
    }
}

/// Lane mirror of `simd::combine`: same dispatch condition, same `m & !3`
/// split between the FMA region and the scalar tail.
#[hibd::hot]
pub(crate) fn combine4(
    dst: &mut [C4],
    tw: &[Complex64],
    gen: &[Complex64],
    r: usize,
    m: usize,
    dir: Direction,
) {
    debug_assert_eq!(dst.len(), r * m);
    debug_assert_eq!(tw.len(), r * m);
    #[cfg(target_arch = "x86_64")]
    if matches!(r, 2..=5) && m >= 4 && hibd_simd::avx2() {
        // SAFETY: `hibd_simd::avx2()` returns true only after runtime
        // detection of the avx2 and fma target features on this CPU.
        unsafe { combine4_avx2(dst, tw, gen, r, m, dir) };
        return;
    }
    combine4_scalar(dst, tw, gen, r, m, dir, 0, m);
}

/// Lane mirror of `simd::combine_scalar` over `k in k0..k1`: twiddle
/// multiply (scalar `Complex64::mul` tree per lane), shared butterfly,
/// write-back.
#[hibd::hot]
#[allow(clippy::too_many_arguments)]
fn combine4_scalar(
    dst: &mut [C4],
    tw: &[Complex64],
    gen: &[Complex64],
    r: usize,
    m: usize,
    dir: Direction,
    k0: usize,
    k1: usize,
) {
    let mut t = [C4::ZERO; MAX_RADIX];
    let mut out = [C4::ZERO; MAX_RADIX];
    for k in k0..k1 {
        for q in 0..r {
            let mut w = tw[q * m + k];
            if dir == Direction::Inverse {
                w = w.conj();
            }
            t[q] = mulw(dst[q * m + k], w);
        }
        butterfly4_into(&t[..r], &mut out[..r], dir, gen);
        for s in 0..r {
            dst[s * m + k] = out[s];
        }
    }
}

/// Load a [`C4`] into `(re, im)` AVX registers (no deinterleave needed —
/// the struct is already split).
#[cfg(target_arch = "x86_64")]
macro_rules! ldc4 {
    ($v:expr) => {{
        // SAFETY: `[f64; LANES]` is 4 contiguous f64s; in-bounds load.
        let re = unsafe { _mm256_loadu_pd($v.re.as_ptr()) };
        // SAFETY: as above.
        let im = unsafe { _mm256_loadu_pd($v.im.as_ptr()) };
        (re, im)
    }};
}

/// Store `(re, im)` AVX registers back into a [`C4`].
#[cfg(target_arch = "x86_64")]
macro_rules! stc4 {
    ($v:expr, $re:expr, $im:expr) => {{
        // SAFETY: in-bounds stores into the 4-lane arrays.
        unsafe { _mm256_storeu_pd($v.re.as_mut_ptr(), $re) };
        // SAFETY: as above.
        unsafe { _mm256_storeu_pd($v.im.as_mut_ptr(), $im) };
    }};
}

/// Broadcast one scalar twiddle to `(re, im)` registers, conjugating via the
/// sign mask `$conj` exactly as the per-mesh `ldtw!` does.
#[cfg(target_arch = "x86_64")]
macro_rules! bw {
    ($w:expr, $conj:expr) => {
        (_mm256_set1_pd($w.re), _mm256_xor_pd(_mm256_set1_pd($w.im), $conj))
    };
}

/// Lanewise complex multiply `(zr + i zi) * (wr + i wi)` via FMA — the same
/// `cmul!` tree as `simd.rs`.
#[cfg(target_arch = "x86_64")]
macro_rules! cmul {
    ($zr:expr, $zi:expr, $wr:expr, $wi:expr) => {
        (
            _mm256_fmsub_pd($zr, $wr, _mm256_mul_pd($zi, $wi)),
            _mm256_fmadd_pd($zr, $wi, _mm256_mul_pd($zi, $wr)),
        )
    };
}

/// Butterfly input `t_q`: the lane bundle at `$idx` times its broadcast
/// twiddle.
#[cfg(target_arch = "x86_64")]
macro_rules! ldt {
    ($dst:expr, $tw:expr, $idx:expr, $conj:expr) => {{
        let (zr, zi) = ldc4!($dst[$idx]);
        let (wr, wi) = bw!($tw[$idx], $conj);
        cmul!(zr, zi, wr, wi)
    }};
}

/// AVX2+FMA lane combine for radix 2/3/4/5: one vector op covers the four
/// meshes of the group at a single `k`; per-element values mirror
/// `simd::combine_avx2` exactly (same FMA trees, same `±sgn` placement, same
/// radix-5 `t0 + (a + c)` association). The `m % 4` tail runs through the
/// scalar lane loop, matching the per-mesh split.
///
/// # Safety
/// The caller must ensure the CPU supports the `avx2` and `fma` target
/// features (runtime-detected via `hibd_simd::avx2()`).
#[cfg(target_arch = "x86_64")]
#[hibd::hot]
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn combine4_avx2(
    dst: &mut [C4],
    tw: &[Complex64],
    gen: &[Complex64],
    r: usize,
    m: usize,
    dir: Direction,
) {
    use core::arch::x86_64::*;

    debug_assert!(dst.len() == r * m && tw.len() == r * m);
    debug_assert!(m >= 4 && (2..=5).contains(&r));
    let inv = dir == Direction::Inverse;
    let sgn = if inv { 1.0 } else { -1.0 };
    let conj = if inv { _mm256_set1_pd(-0.0) } else { _mm256_setzero_pd() };
    let m4 = m & !3;

    match r {
        2 => {
            for k in 0..m4 {
                let (ar, ai) = ldc4!(dst[k]);
                let (br, bi) = ldt!(dst, tw, m + k, conj);
                stc4!(dst[k], _mm256_add_pd(ar, br), _mm256_add_pd(ai, bi));
                stc4!(dst[m + k], _mm256_sub_pd(ar, br), _mm256_sub_pd(ai, bi));
            }
        }
        3 => {
            let half = _mm256_set1_pd(0.5);
            let hp = _mm256_set1_pd(sgn * HALF_SQRT3);
            let hm = _mm256_set1_pd(-sgn * HALF_SQRT3);
            for k in 0..m4 {
                let (t0r, t0i) = ldc4!(dst[k]);
                let (t1r, t1i) = ldt!(dst, tw, m + k, conj);
                let (t2r, t2i) = ldt!(dst, tw, 2 * m + k, conj);
                let sr = _mm256_add_pd(t1r, t2r);
                let si = _mm256_add_pd(t1i, t2i);
                let dr = _mm256_sub_pd(t1r, t2r);
                let di = _mm256_sub_pd(t1i, t2i);
                // m1 = t0 - s/2; m2 = ∓i * sqrt(3)/2 * d.
                let m1r = _mm256_fnmadd_pd(half, sr, t0r);
                let m1i = _mm256_fnmadd_pd(half, si, t0i);
                let m2r = _mm256_mul_pd(hm, di);
                let m2i = _mm256_mul_pd(hp, dr);
                stc4!(dst[k], _mm256_add_pd(t0r, sr), _mm256_add_pd(t0i, si));
                stc4!(dst[m + k], _mm256_add_pd(m1r, m2r), _mm256_add_pd(m1i, m2i));
                stc4!(dst[2 * m + k], _mm256_sub_pd(m1r, m2r), _mm256_sub_pd(m1i, m2i));
            }
        }
        4 => {
            let psg = _mm256_set1_pd(sgn);
            let nsg = _mm256_set1_pd(-sgn);
            for k in 0..m4 {
                let (t0r, t0i) = ldc4!(dst[k]);
                let (t1r, t1i) = ldt!(dst, tw, m + k, conj);
                let (t2r, t2i) = ldt!(dst, tw, 2 * m + k, conj);
                let (t3r, t3i) = ldt!(dst, tw, 3 * m + k, conj);
                let ar = _mm256_add_pd(t0r, t2r);
                let ai = _mm256_add_pd(t0i, t2i);
                let br = _mm256_sub_pd(t0r, t2r);
                let bi = _mm256_sub_pd(t0i, t2i);
                let cr = _mm256_add_pd(t1r, t3r);
                let ci = _mm256_add_pd(t1i, t3i);
                let er = _mm256_sub_pd(t1r, t3r);
                let ei = _mm256_sub_pd(t1i, t3i);
                // id = ∓i * (t1 - t3).
                let idr = _mm256_mul_pd(nsg, ei);
                let idi = _mm256_mul_pd(psg, er);
                stc4!(dst[k], _mm256_add_pd(ar, cr), _mm256_add_pd(ai, ci));
                stc4!(dst[m + k], _mm256_add_pd(br, idr), _mm256_add_pd(bi, idi));
                stc4!(dst[2 * m + k], _mm256_sub_pd(ar, cr), _mm256_sub_pd(ai, ci));
                stc4!(dst[3 * m + k], _mm256_sub_pd(br, idr), _mm256_sub_pd(bi, idi));
            }
        }
        5 => {
            let vc1 = _mm256_set1_pd(C1);
            let vs1 = _mm256_set1_pd(S1);
            let vc2 = _mm256_set1_pd(C2);
            let vs2 = _mm256_set1_pd(S2);
            let psg = _mm256_set1_pd(sgn);
            let nsg = _mm256_set1_pd(-sgn);
            for k in 0..m4 {
                let (t0r, t0i) = ldc4!(dst[k]);
                let (t1r, t1i) = ldt!(dst, tw, m + k, conj);
                let (t2r, t2i) = ldt!(dst, tw, 2 * m + k, conj);
                let (t3r, t3i) = ldt!(dst, tw, 3 * m + k, conj);
                let (t4r, t4i) = ldt!(dst, tw, 4 * m + k, conj);
                let ar = _mm256_add_pd(t1r, t4r);
                let ai = _mm256_add_pd(t1i, t4i);
                let br = _mm256_sub_pd(t1r, t4r);
                let bi = _mm256_sub_pd(t1i, t4i);
                let cr = _mm256_add_pd(t2r, t3r);
                let ci = _mm256_add_pd(t2i, t3i);
                let dr = _mm256_sub_pd(t2r, t3r);
                let di = _mm256_sub_pd(t2i, t3i);
                // re1 = t0 + C1 a + C2 c ; re2 = t0 + C2 a + C1 c.
                let re1r = _mm256_fmadd_pd(vc2, cr, _mm256_fmadd_pd(vc1, ar, t0r));
                let re1i = _mm256_fmadd_pd(vc2, ci, _mm256_fmadd_pd(vc1, ai, t0i));
                let re2r = _mm256_fmadd_pd(vc1, cr, _mm256_fmadd_pd(vc2, ar, t0r));
                let re2i = _mm256_fmadd_pd(vc1, ci, _mm256_fmadd_pd(vc2, ai, t0i));
                // im1 = ±i (S1 b + S2 d) ; im2 = ±i (S2 b - S1 d).
                let z1r = _mm256_fmadd_pd(vs2, dr, _mm256_mul_pd(vs1, br));
                let z1i = _mm256_fmadd_pd(vs2, di, _mm256_mul_pd(vs1, bi));
                let z2r = _mm256_fnmadd_pd(vs1, dr, _mm256_mul_pd(vs2, br));
                let z2i = _mm256_fnmadd_pd(vs1, di, _mm256_mul_pd(vs2, bi));
                let im1r = _mm256_mul_pd(nsg, z1i);
                let im1i = _mm256_mul_pd(psg, z1r);
                let im2r = _mm256_mul_pd(nsg, z2i);
                let im2i = _mm256_mul_pd(psg, z2r);
                let or0 = _mm256_add_pd(t0r, _mm256_add_pd(ar, cr));
                let oi0 = _mm256_add_pd(t0i, _mm256_add_pd(ai, ci));
                stc4!(dst[k], or0, oi0);
                stc4!(dst[m + k], _mm256_add_pd(re1r, im1r), _mm256_add_pd(re1i, im1i));
                stc4!(dst[2 * m + k], _mm256_add_pd(re2r, im2r), _mm256_add_pd(re2i, im2i));
                stc4!(dst[3 * m + k], _mm256_sub_pd(re2r, im2r), _mm256_sub_pd(re2i, im2i));
                stc4!(dst[4 * m + k], _mm256_sub_pd(re1r, im1r), _mm256_sub_pd(re1i, im1i));
            }
        }
        _ => unreachable!("combine4_avx2 dispatch covers radix 2..=5 only"),
    }

    combine4_scalar(dst, tw, gen, r, m, dir, m4, m);
}

/// Lane mirror of `FftPlan::recurse`: same DIT structure over the same
/// per-level factors, sizes and twiddle tables.
pub(crate) fn recurse4(
    plan: &FftPlan,
    level: usize,
    src: &[C4],
    stride: usize,
    dst: &mut [C4],
    dir: Direction,
) {
    let nl = plan.level_sizes()[level];
    let r = plan.level_factors()[level];
    let m = nl / r;

    if m == 1 {
        let mut t = [C4::ZERO; MAX_RADIX];
        for (q, tq) in t[..r].iter_mut().enumerate() {
            *tq = src[q * stride];
        }
        butterfly4_into(&t[..r], &mut dst[..r], dir, plan.gen_table(level, dir));
        return;
    }

    for q in 0..r {
        recurse4(
            plan,
            level + 1,
            &src[q * stride..],
            stride * r,
            &mut dst[q * m..(q + 1) * m],
            dir,
        );
    }

    combine4(&mut dst[..nl], plan.level_twiddles(level), plan.gen_table(level, dir), r, m, dir);
}

/// Lane mirror of `FftPlan::process`: in-place transform of four lanes at
/// once. Mixed-radix plans only — the Bluestein fallback has no lane mirror,
/// and callers must gate on `FftPlan::is_bluestein` first.
pub(crate) fn process4(plan: &FftPlan, data: &mut [C4], scratch: &mut [C4], dir: Direction) {
    assert_eq!(data.len(), plan.len(), "data length mismatch");
    assert!(scratch.len() >= plan.scratch_len(), "scratch too small");
    if plan.len() == 1 {
        return;
    }
    debug_assert!(!plan.is_bluestein(), "lane transforms require mixed-radix plans");
    scratch[..plan.len()].copy_from_slice(data);
    recurse4(plan, 0, &scratch[..plan.len()], 1, data, dir);
}

/// Lane mirror of `RealFftPlan::forward`: r2c of four real lines at once
/// (same even/odd packing, same unpack trees per lane).
pub(crate) fn real4_forward(
    plan: &RealFftPlan,
    inputs: [&[f64]; LANES],
    spectrum: &mut [C4],
    scratch: &mut [C4],
) {
    let n = plan.len();
    let m = n / 2;
    for x in &inputs {
        assert_eq!(x.len(), n, "input length mismatch");
    }
    assert_eq!(spectrum.len(), m + 1, "spectrum length mismatch");
    assert!(scratch.len() >= plan.scratch_len(), "scratch too small");
    let (z, fft_scratch) = scratch.split_at_mut(m);

    for (j, zj) in z.iter_mut().enumerate() {
        for l in 0..LANES {
            zj.re[l] = inputs[l][2 * j];
            zj.im[l] = inputs[l][2 * j + 1];
        }
    }
    process4(plan.half_plan(), z, fft_scratch, Direction::Forward);

    let tw = plan.unpack_twiddles();
    for k in 0..=m {
        let zk = z[k % m];
        let zmk = conj4(z[(m - k) % m]);
        let e = scale4(add4(zk, zmk), 0.5);
        let o = mul_neg_i4(scale4(sub4(zk, zmk), 0.5));
        spectrum[k] = add4(e, mulw(o, tw[k]));
    }
}

/// Lane mirror of `RealFftPlan::inverse`: c2r of four half spectra at once
/// (unnormalized, same packing trees per lane).
pub(crate) fn real4_inverse(
    plan: &RealFftPlan,
    spectrum: &[C4],
    outputs: [&mut [f64]; LANES],
    scratch: &mut [C4],
) {
    let n = plan.len();
    let m = n / 2;
    assert_eq!(spectrum.len(), m + 1, "spectrum length mismatch");
    for x in &outputs {
        assert_eq!(x.len(), n, "output length mismatch");
    }
    assert!(scratch.len() >= plan.scratch_len(), "scratch too small");
    let (h, fft_scratch) = scratch.split_at_mut(m);

    let tw = plan.unpack_twiddles();
    for k in 0..m {
        let xk = spectrum[k];
        let xmk = conj4(spectrum[m - k]);
        let sum = add4(xk, xmk);
        let diff = sub4(xk, xmk);
        h[k] = add4(sum, mul_i4(mulw(diff, tw[k].conj())));
    }
    process4(plan.half_plan(), h, fft_scratch, Direction::Inverse);
    for j in 0..m {
        for l in 0..LANES {
            outputs[l][2 * j] = h[j].re[l];
            outputs[l][2 * j + 1] = h[j].im[l];
        }
    }
}
