//! `hibd-fft`: three-dimensional real-to-complex FFTs, from scratch.
//!
//! The paper's reciprocal-space PME pipeline (Section IV-B3) uses Intel MKL's
//! in-place real-to-complex forward and complex-to-real inverse 3D FFTs. This
//! crate provides the equivalent functionality:
//!
//! * [`Complex64`] — a minimal complex number type;
//! * [`FftPlan`] — a 1D complex mixed-radix (2/3/4/5 + generic small prime)
//!   Cooley–Tukey plan with precomputed twiddle factors;
//! * [`RealFftPlan`] — 1D real-to-complex / complex-to-real transforms built
//!   on a half-length complex FFT;
//! * [`Fft3`] — the 3D r2c/c2r transform used by PME, storing only the
//!   half spectrum `n0 x n1 x (n2/2 + 1)` exactly as the paper describes
//!   ("this halves the memory and bandwidth requirements");
//! * [`dft`] — naive `O(n^2)` reference transforms used by the test suite.
//!
//! # Conventions
//!
//! The forward transform uses `e^{-2 pi i jk/n}` and is unnormalized. The
//! inverse uses `e^{+2 pi i jk/n}` and is **also unnormalized**, so
//! `inverse(forward(x)) = n * x`. PME wants exactly this convention: the
//! spread-mesh DFT directly approximates the structure factor
//! `f̂(k) = Σ_i e^{-i k·r_i} f_i` and the velocity synthesis is a plain
//! unnormalized inverse sum over lattice vectors (paper Eq. 3), so no `1/n`
//! appears anywhere in the PME pipeline.

#![allow(clippy::needless_range_loop)] // index-heavy numeric kernels

pub mod complex;
pub mod dft;
pub mod fft3;
mod lanes;
pub mod plan;
pub mod real;
mod simd;

pub use complex::Complex64;
pub use fft3::Fft3;
pub use plan::{next_smooth_even, FftError, FftPlan};
pub use real::RealFftPlan;
