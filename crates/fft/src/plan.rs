//! 1D complex FFT: mixed-radix Cooley–Tukey with a Bluestein fallback.
//!
//! Lengths whose prime factors are at most [`MAX_RADIX`] run through the
//! mixed-radix path (the PME tuner only ever chooses such "smooth" mesh
//! dimensions; the paper's Table III uses K in {32, 64, 128, 256, 400}, all
//! 5-smooth). Radices 2, 3, 4 and 5 have hand-written butterflies; other
//! small primes use a direct `O(r^2)` kernel. Any other length — including
//! large primes — is handled by Bluestein's chirp-z algorithm on a
//! power-of-two inner transform, so every size is supported.
//!
//! The plan precomputes one twiddle table per recursion level, so applying
//! the plan performs no trigonometry. Plans are immutable after construction
//! and can be shared across threads (`&self` apply with caller-provided
//! scratch), which is how [`crate::Fft3`] runs many lines in parallel.

use crate::complex::Complex64;
use std::f64::consts::TAU;

/// Largest supported prime factor of the transform length.
pub const MAX_RADIX: usize = 16;

/// Errors from plan construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FftError {
    /// Length zero is not a valid transform size.
    ZeroLength,
    /// The length has a prime factor larger than [`MAX_RADIX`] (no longer
    /// returned by [`FftPlan::new`], which falls back to Bluestein; kept for
    /// [`FftPlan::new_mixed_radix`] callers that want smooth sizes only).
    RoughLength { n: usize, prime: usize },
    /// Real transforms additionally require an even length.
    OddRealLength { n: usize },
}

impl std::fmt::Display for FftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FftError::ZeroLength => write!(f, "FFT length must be positive"),
            FftError::RoughLength { n, prime } => {
                write!(f, "FFT length {n} has unsupported prime factor {prime} (> {MAX_RADIX})")
            }
            FftError::OddRealLength { n } => {
                write!(f, "real FFT length {n} must be even")
            }
        }
    }
}

impl std::error::Error for FftError {}

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Direction {
    Forward,
    Inverse,
}

/// A reusable plan for complex FFTs of a fixed length.
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    /// Radix used at each recursion level, outermost first.
    factors: Vec<usize>,
    /// Sub-transform length at each level: `sizes[l] = prod(factors[l..])`.
    sizes: Vec<usize>,
    /// Forward twiddles per level: `tw[l][q*m + k] = e^{-2 pi i qk / sizes[l]}`
    /// for `q in 0..factors[l]`, `k in 0..m`, `m = sizes[l] / factors[l]`.
    twiddles: Vec<Vec<Complex64>>,
    /// Split (structure-of-arrays) copies of `twiddles`: `tw_re[l][q*m + k]`
    /// and `tw_im[l][q*m + k]`. The AVX2 combine kernels load twiddle lanes
    /// with unit stride from these instead of deinterleaving the AoS table.
    tw_re: Vec<Vec<f64>>,
    tw_im: Vec<Vec<f64>>,
    /// Generic-butterfly twiddles per level, `[forward, inverse]`: entry `j`
    /// is `e^{∓2 pi i j / r}` for the level's radix `r`. Populated only for
    /// radices above 5 (the hand-written butterflies embed their constants);
    /// the tables keep the `O(r^2)` leaf DFT free of per-apply trigonometry
    /// while staying bitwise identical to it — each entry is `cis` of
    /// exactly the angle the inline expression used to compute.
    gen_tw: Vec<[Vec<Complex64>; 2]>,
    /// Bluestein fallback state for rough lengths.
    bluestein: Option<Box<Bluestein>>,
}

/// Bluestein chirp-z state: an `n`-point DFT as a circular convolution of
/// length `m` (power of two, `>= 2n - 1`).
#[derive(Debug)]
struct Bluestein {
    m: usize,
    inner: FftPlan,
    /// Forward chirp `c_j = e^{-pi i j^2 / n}`, `j in 0..n`.
    chirp: Vec<Complex64>,
    /// Inner-FFT image of the circular chirp kernel `b_j = conj(c_{|j|})`.
    bhat: Vec<Complex64>,
}

impl Bluestein {
    fn new(n: usize) -> Bluestein {
        // Any inner length `m >= 2n - 1` works for the circular convolution;
        // the next *smooth even* length is almost always much closer than the
        // next power of two (n = 17 gets m = 36 instead of 64).
        let m = next_smooth_even(2 * n - 1);
        let inner = FftPlan::new_mixed_radix(m).expect("next_smooth_even returns smooth lengths");
        // Angle pi j^2 / n is periodic in j with period 2n.
        let chirp: Vec<Complex64> = (0..n)
            .map(|j| {
                let e = (j * j) % (2 * n);
                Complex64::cis(-std::f64::consts::PI * e as f64 / n as f64)
            })
            .collect();
        let mut b = vec![Complex64::ZERO; m];
        for j in 0..n {
            let v = chirp[j].conj();
            b[j] = v;
            if j > 0 {
                b[m - j] = v;
            }
        }
        let mut scratch = vec![Complex64::ZERO; m];
        inner.forward(&mut b, &mut scratch);
        Bluestein { m, inner, chirp, bhat: b }
    }

    /// Forward n-point DFT of `data` (in place) via chirp convolution.
    fn forward(&self, data: &mut [Complex64], scratch: &mut [Complex64]) {
        let n = data.len();
        let m = self.m;
        let (a, rest) = scratch.split_at_mut(m);
        let inner_scratch = &mut rest[..m];
        // a_j = x_j c_j, zero-padded to m.
        for j in 0..n {
            a[j] = data[j] * self.chirp[j];
        }
        for v in &mut a[n..] {
            *v = Complex64::ZERO;
        }
        self.inner.forward(a, inner_scratch);
        for (av, bv) in a.iter_mut().zip(&self.bhat) {
            *av *= *bv;
        }
        self.inner.inverse(a, inner_scratch);
        let inv_m = 1.0 / m as f64;
        for k in 0..n {
            data[k] = a[k].scale(inv_m) * self.chirp[k];
        }
    }
}

/// Smallest even length `>= n` whose prime factors are all `<= MAX_RADIX`
/// (i.e. accepted by [`FftPlan::new_mixed_radix`]). Used by the Bluestein
/// fallback to size its chirp convolution, and re-exported for mesh tuners
/// that want FFT-friendly dimensions.
pub fn next_smooth_even(n: usize) -> usize {
    let mut m = n.max(2);
    if m % 2 == 1 {
        m += 1;
    }
    while factorize(m).is_err() {
        m += 2;
    }
    m
}

/// Factor `n` into radices (4s first, then 2, 3, 5, then other primes).
fn factorize(mut n: usize) -> Result<Vec<usize>, FftError> {
    let mut f = Vec::new();
    while n.is_multiple_of(4) {
        f.push(4);
        n /= 4;
    }
    for p in [2usize, 3, 5] {
        while n.is_multiple_of(p) {
            f.push(p);
            n /= p;
        }
    }
    let mut p = 7;
    while n > 1 {
        while n.is_multiple_of(p) {
            if p > MAX_RADIX {
                return Err(FftError::RoughLength { n, prime: p });
            }
            f.push(p);
            n /= p;
        }
        p += 2;
        if p * p > n && n > 1 {
            if n > MAX_RADIX {
                return Err(FftError::RoughLength { n, prime: n });
            }
            f.push(n);
            n = 1;
        }
    }
    Ok(f)
}

impl FftPlan {
    /// Build a plan for length-`n` transforms: mixed radix for smooth `n`,
    /// Bluestein otherwise.
    pub fn new(n: usize) -> Result<FftPlan, FftError> {
        match FftPlan::new_mixed_radix(n) {
            Err(FftError::RoughLength { .. }) => Ok(FftPlan {
                n,
                factors: Vec::new(),
                sizes: Vec::new(),
                twiddles: Vec::new(),
                tw_re: Vec::new(),
                tw_im: Vec::new(),
                gen_tw: Vec::new(),
                bluestein: Some(Box::new(Bluestein::new(n))),
            }),
            other => other,
        }
    }

    /// Build a mixed-radix plan; errors with [`FftError::RoughLength`] when
    /// `n` has a prime factor above [`MAX_RADIX`] (useful to *detect* smooth
    /// sizes, as the PME tuner does).
    pub fn new_mixed_radix(n: usize) -> Result<FftPlan, FftError> {
        if n == 0 {
            return Err(FftError::ZeroLength);
        }
        let factors = factorize(n)?;
        let mut sizes = Vec::with_capacity(factors.len());
        let mut twiddles = Vec::with_capacity(factors.len());
        let mut tw_re = Vec::with_capacity(factors.len());
        let mut tw_im = Vec::with_capacity(factors.len());
        let mut gen_tw = Vec::with_capacity(factors.len());
        let mut cur = n;
        for &r in &factors {
            sizes.push(cur);
            let m = cur / r;
            let mut tw = Vec::with_capacity(r * m);
            for q in 0..r {
                for k in 0..m {
                    tw.push(Complex64::cis(-TAU * ((q * k) % cur) as f64 / cur as f64));
                }
            }
            tw_re.push(tw.iter().map(|w| w.re).collect());
            tw_im.push(tw.iter().map(|w| w.im).collect());
            twiddles.push(tw);
            if r > 5 {
                let fwd = (0..r).map(|j| Complex64::cis(-TAU * j as f64 / r as f64)).collect();
                let inv = (0..r).map(|j| Complex64::cis(TAU * j as f64 / r as f64)).collect();
                gen_tw.push([fwd, inv]);
            } else {
                gen_tw.push([Vec::new(), Vec::new()]);
            }
            cur = m;
        }
        Ok(FftPlan { n, factors, sizes, twiddles, tw_re, tw_im, gen_tw, bluestein: None })
    }

    /// Whether this plan uses the Bluestein fallback.
    pub fn is_bluestein(&self) -> bool {
        self.bluestein.is_some()
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Scratch length required by [`forward`](Self::forward) /
    /// [`inverse`](Self::inverse).
    pub fn scratch_len(&self) -> usize {
        match &self.bluestein {
            Some(b) => 2 * b.m,
            None => self.n,
        }
    }

    /// In-place forward transform (`e^{-2 pi i}`, unnormalized).
    ///
    /// `scratch` must have at least [`scratch_len`](Self::scratch_len)
    /// elements; its contents are clobbered.
    pub fn forward(&self, data: &mut [Complex64], scratch: &mut [Complex64]) {
        self.process(data, scratch, Direction::Forward);
    }

    /// In-place inverse transform (`e^{+2 pi i}`, **unnormalized**: the
    /// composition `inverse(forward(x))` yields `n * x`).
    pub fn inverse(&self, data: &mut [Complex64], scratch: &mut [Complex64]) {
        self.process(data, scratch, Direction::Inverse);
    }

    fn process(&self, data: &mut [Complex64], scratch: &mut [Complex64], dir: Direction) {
        assert_eq!(data.len(), self.n, "data length mismatch");
        assert!(scratch.len() >= self.scratch_len(), "scratch too small");
        if self.n == 1 {
            return;
        }
        if let Some(b) = &self.bluestein {
            // IDFT(x) = conj(DFT(conj(x))) turns the forward chirp transform
            // into the (unnormalized) inverse.
            if dir == Direction::Inverse {
                for v in data.iter_mut() {
                    *v = v.conj();
                }
            }
            b.forward(data, scratch);
            if dir == Direction::Inverse {
                for v in data.iter_mut() {
                    *v = v.conj();
                }
            }
            return;
        }
        scratch[..self.n].copy_from_slice(data);
        self.recurse(0, &scratch[..self.n], 1, data, dir);
    }

    /// Out-of-place DIT recursion: transform the `sizes[level]`-point
    /// sequence `src[0], src[stride], src[2*stride], ...` into contiguous
    /// `dst[0..sizes[level]]`.
    fn recurse(
        &self,
        level: usize,
        src: &[Complex64],
        stride: usize,
        dst: &mut [Complex64],
        dir: Direction,
    ) {
        let nl = self.sizes[level];
        let r = self.factors[level];
        let m = nl / r;

        if m == 1 {
            // Leaf: gather the r strided inputs and do a single butterfly.
            let mut t = [Complex64::ZERO; MAX_RADIX];
            for (q, tq) in t[..r].iter_mut().enumerate() {
                *tq = src[q * stride];
            }
            butterfly(&mut t[..r], &mut dst[..r], dir, self.gen_table(level, dir));
            return;
        }

        // Sub-transforms of the r interleaved subsequences.
        for q in 0..r {
            self.recurse(
                level + 1,
                &src[q * stride..],
                stride * r,
                &mut dst[q * m..(q + 1) * m],
                dir,
            );
        }

        // Combine: X[k + m*s] = Σ_q w^{qk} ω_r^{qs} Y_q[k]. Dispatches to the
        // AVX2 SoA kernels for radix 2/3/4/5; the scalar fallback reproduces
        // the classic loop bitwise.
        crate::simd::combine(
            &mut dst[..nl],
            &self.twiddles[level],
            &self.tw_re[level],
            &self.tw_im[level],
            self.gen_table(level, dir),
            r,
            m,
            dir,
        );
    }

    /// Radix used at each recursion level (empty for Bluestein plans).
    pub(crate) fn level_factors(&self) -> &[usize] {
        &self.factors
    }

    /// Sub-transform length at each recursion level.
    pub(crate) fn level_sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// AoS twiddle table for one recursion level.
    pub(crate) fn level_twiddles(&self, level: usize) -> &[Complex64] {
        &self.twiddles[level]
    }

    /// Generic-butterfly table for one level and direction (empty for the
    /// hand-written radices 1..=5, which embed their constants).
    pub(crate) fn gen_table(&self, level: usize, dir: Direction) -> &[Complex64] {
        &self.gen_tw[level][(dir == Direction::Inverse) as usize]
    }

    /// Inner convolution length of the Bluestein fallback, if this plan uses
    /// it (pinned by tests: the chirp-z inner transform must be the next
    /// smooth even length, not the next power of two).
    pub fn bluestein_inner_len(&self) -> Option<usize> {
        self.bluestein.as_ref().map(|b| b.m)
    }
}

/// In-place small DFT used at recursion leaves.
fn butterfly(t: &mut [Complex64], out: &mut [Complex64], dir: Direction, gen: &[Complex64]) {
    let mut tmp = [Complex64::ZERO; MAX_RADIX];
    tmp[..t.len()].copy_from_slice(t);
    butterfly_into(&tmp[..t.len()], out, dir, gen);
}

/// `out[s] = Σ_q t[q] e^{∓2 pi i qs/r}` for `r = t.len()` (hand-written for
/// r = 1..5; radices above 5 read the plan's precomputed `gen` table, whose
/// entries are bitwise the `cis` values the direct loop used to evaluate).
pub(crate) fn butterfly_into(
    t: &[Complex64],
    out: &mut [Complex64],
    dir: Direction,
    gen: &[Complex64],
) {
    let inv = dir == Direction::Inverse;
    match t.len() {
        1 => out[0] = t[0],
        2 => {
            out[0] = t[0] + t[1];
            out[1] = t[0] - t[1];
        }
        3 => {
            // w = e^{∓2 pi i/3} = -1/2 ∓ i sqrt(3)/2
            const HALF_SQRT3: f64 = 0.866_025_403_784_438_6;
            let s = t[1] + t[2];
            let d = t[1] - t[2];
            let m1 = t[0] - s.scale(0.5);
            let m2 =
                if inv { d.mul_i().scale(HALF_SQRT3) } else { d.mul_neg_i().scale(HALF_SQRT3) };
            out[0] = t[0] + s;
            out[1] = m1 + m2;
            out[2] = m1 - m2;
        }
        4 => {
            let a = t[0] + t[2];
            let b = t[0] - t[2];
            let c = t[1] + t[3];
            let d = t[1] - t[3];
            let id = if inv { d.mul_i() } else { d.mul_neg_i() };
            out[0] = a + c;
            out[1] = b + id;
            out[2] = a - c;
            out[3] = b - id;
        }
        5 => {
            // cos/sin of 2 pi/5 and 4 pi/5.
            const C1: f64 = 0.309_016_994_374_947_45;
            const S1: f64 = 0.951_056_516_295_153_5;
            const C2: f64 = -0.809_016_994_374_947_5;
            const S2: f64 = 0.587_785_252_292_473_1;
            let a = t[1] + t[4];
            let b = t[1] - t[4];
            let c = t[2] + t[3];
            let d = t[2] - t[3];
            let sgn = if inv { 1.0 } else { -1.0 };
            let re1 = t[0] + a.scale(C1) + c.scale(C2);
            let im1 = (b.scale(S1) + d.scale(S2)).mul_i().scale(sgn);
            let re2 = t[0] + a.scale(C2) + c.scale(C1);
            let im2 = (b.scale(S2) - d.scale(S1)).mul_i().scale(sgn);
            out[0] = t[0] + a + c;
            out[1] = re1 + im1;
            out[2] = re2 + im2;
            out[3] = re2 - im2;
            out[4] = re1 - im1;
        }
        r => {
            // Direct O(r^2) DFT for other small primes (r <= MAX_RADIX),
            // table-driven: `gen[j] = cis(sign * j / r)`.
            debug_assert_eq!(gen.len(), r, "generic butterfly needs its twiddle table");
            for (s, o) in out.iter_mut().enumerate() {
                let mut acc = Complex64::ZERO;
                for (q, &v) in t.iter().enumerate() {
                    acc += v * gen[(q * s) % r];
                }
                *o = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft_forward, dft_inverse};

    fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
        // Small deterministic LCG; avoids a rand dependency here.
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut next = move || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n).map(|_| Complex64::new(next(), next())).collect()
    }

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (*x - *y).abs()).fold(0.0, f64::max)
    }

    const SIZES: &[usize] = &[
        1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16, 20, 24, 25, 27, 30, 32, 36, 40, 45, 48,
        60, 64, 100, 121, 125, 128, 144, 169, 200, 243, 256, 400,
        // Rough sizes exercising the Bluestein fallback.
        17, 19, 23, 34, 97, 101, 257,
    ];

    #[test]
    fn forward_matches_naive_dft() {
        for &n in SIZES {
            let plan = FftPlan::new(n).unwrap();
            let x = random_signal(n, n as u64);
            let want = dft_forward(&x);
            let mut got = x.clone();
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.forward(&mut got, &mut scratch);
            let scale = (n as f64).sqrt();
            assert!(max_err(&got, &want) < 1e-11 * scale, "n={n}: err {}", max_err(&got, &want));
        }
    }

    #[test]
    fn inverse_matches_naive_dft() {
        for &n in SIZES {
            let plan = FftPlan::new(n).unwrap();
            let x = random_signal(n, 1000 + n as u64);
            let want = dft_inverse(&x);
            let mut got = x.clone();
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.inverse(&mut got, &mut scratch);
            assert!(max_err(&got, &want) < 1e-11 * (n as f64).sqrt(), "n={n}");
        }
    }

    #[test]
    fn roundtrip_scales_by_n() {
        for &n in SIZES {
            let plan = FftPlan::new(n).unwrap();
            let x = random_signal(n, 7 * n as u64 + 3);
            let mut y = x.clone();
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.forward(&mut y, &mut scratch);
            plan.inverse(&mut y, &mut scratch);
            let recovered: Vec<Complex64> = y.iter().map(|v| v.scale(1.0 / n as f64)).collect();
            assert!(max_err(&recovered, &x) < 1e-12, "n={n}");
        }
    }

    #[test]
    fn parseval_identity() {
        for &n in &[16usize, 30, 100, 400] {
            let plan = FftPlan::new(n).unwrap();
            let x = random_signal(n, 555 + n as u64);
            let time_energy: f64 = x.iter().map(|v| v.norm2()).sum();
            let mut y = x.clone();
            let mut scratch = vec![Complex64::ZERO; n];
            plan.forward(&mut y, &mut scratch);
            let freq_energy: f64 = y.iter().map(|v| v.norm2()).sum::<f64>() / n as f64;
            assert!(
                (time_energy - freq_energy).abs() < 1e-10 * time_energy,
                "n={n}: {time_energy} vs {freq_energy}"
            );
        }
    }

    #[test]
    fn linearity() {
        let n = 48;
        let plan = FftPlan::new(n).unwrap();
        let x = random_signal(n, 1);
        let y = random_signal(n, 2);
        let mut scratch = vec![Complex64::ZERO; n];
        let alpha = Complex64::new(0.7, -0.3);

        let mut fx = x.clone();
        plan.forward(&mut fx, &mut scratch);
        let mut fy = y.clone();
        plan.forward(&mut fy, &mut scratch);
        let combined_spectra: Vec<Complex64> =
            fx.iter().zip(&fy).map(|(a, b)| alpha * *a + *b).collect();

        let mut z: Vec<Complex64> = x.iter().zip(&y).map(|(a, b)| alpha * *a + *b).collect();
        plan.forward(&mut z, &mut scratch);
        assert!(max_err(&z, &combined_spectra) < 1e-12);
    }

    #[test]
    fn plan_selection_and_errors() {
        assert_eq!(FftPlan::new(0).unwrap_err(), FftError::ZeroLength);
        // Rough lengths now succeed via Bluestein...
        assert!(FftPlan::new(17).unwrap().is_bluestein());
        assert!(FftPlan::new(2 * 19).unwrap().is_bluestein());
        // ...while the mixed-radix constructor still reports them.
        assert!(matches!(FftPlan::new_mixed_radix(17).unwrap_err(), FftError::RoughLength { .. }));
        // Smooth sizes stay on the mixed-radix path.
        assert!(!FftPlan::new(13).unwrap().is_bluestein());
        assert!(!FftPlan::new(400).unwrap().is_bluestein());
    }

    #[test]
    fn factorization_products() {
        for &n in SIZES {
            match factorize(n) {
                Ok(f) => assert_eq!(f.iter().product::<usize>(), n.max(1), "n={n}"),
                Err(FftError::RoughLength { prime, .. }) => {
                    assert!(prime > MAX_RADIX, "n={n} flagged prime {prime}");
                }
                Err(e) => panic!("n={n}: unexpected error {e}"),
            }
        }
    }

    #[test]
    fn length_one_is_identity() {
        let plan = FftPlan::new(1).unwrap();
        let mut x = vec![Complex64::new(2.5, -1.5)];
        let mut s = vec![Complex64::ZERO; 1];
        plan.forward(&mut x, &mut s);
        assert_eq!(x[0], Complex64::new(2.5, -1.5));
    }
}
