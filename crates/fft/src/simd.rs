//! Vectorized combine kernels for the mixed-radix recursion.
//!
//! Each Cooley–Tukey level multiplies the `r` sub-transform outputs by
//! twiddle factors and applies an `r`-point butterfly for every `k` in
//! `0..m`. The butterflies for neighbouring `k` are independent, so the AVX2
//! kernels here process four of them per iteration in structure-of-arrays
//! form: the interleaved `Complex64` data is deinterleaved into split re/im
//! registers, twiddles come from the plan's split `tw_re`/`tw_im` tables with
//! unit stride, and every complex multiply-add maps onto FMA instructions.
//!
//! Dispatch policy (see `hibd-simd`): the AVX2 path is taken only for the
//! hand-unrolled radices 2/3/4/5 with `m >= 4` and when runtime detection
//! reports AVX2+FMA. The scalar fallback [`combine_scalar`] reproduces the
//! pre-SIMD combine loop operation-for-operation, so forcing
//! `HIBD_SIMD=off` yields bitwise identical transforms to the historical
//! scalar implementation.

use crate::complex::Complex64;
use crate::plan::{butterfly_into, Direction, MAX_RADIX};
use hibd_hot as hibd;

// Butterfly constants; must match the scalar kernels in `plan.rs`.
const HALF_SQRT3: f64 = 0.866_025_403_784_438_6;
const C1: f64 = 0.309_016_994_374_947_45;
const S1: f64 = 0.951_056_516_295_153_5;
const C2: f64 = -0.809_016_994_374_947_5;
const S2: f64 = 0.587_785_252_292_473_1;

/// Combine stage entry point: `dst` holds the `r` contiguous sub-transform
/// outputs of length `m` each; twiddle tables are the plan's per-level AoS
/// (`tw`) and SoA (`tw_re`/`tw_im`) views of the same factors.
#[hibd::hot]
#[allow(clippy::too_many_arguments)]
pub(crate) fn combine(
    dst: &mut [Complex64],
    tw: &[Complex64],
    tw_re: &[f64],
    tw_im: &[f64],
    gen: &[Complex64],
    r: usize,
    m: usize,
    dir: Direction,
) {
    debug_assert_eq!(dst.len(), r * m);
    debug_assert_eq!(tw.len(), r * m);
    #[cfg(target_arch = "x86_64")]
    if matches!(r, 2..=5) && m >= 4 && hibd_simd::avx2() {
        // SAFETY: `hibd_simd::avx2()` returns true only after runtime
        // detection of the avx2 and fma target features on this CPU.
        unsafe { combine_avx2(dst, tw, tw_re, tw_im, gen, r, m, dir) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (tw_re, tw_im);
    combine_scalar(dst, tw, gen, r, m, dir, 0, m);
}

/// The classic scalar combine loop over `k in k0..k1`, preserved bitwise
/// from the pre-SIMD implementation (twiddle multiply, then the shared
/// butterfly kernel). Also used for the `m % 4` tail of the AVX2 path.
#[hibd::hot]
#[allow(clippy::too_many_arguments)]
fn combine_scalar(
    dst: &mut [Complex64],
    tw: &[Complex64],
    gen: &[Complex64],
    r: usize,
    m: usize,
    dir: Direction,
    k0: usize,
    k1: usize,
) {
    let mut t = [Complex64::ZERO; MAX_RADIX];
    let mut out = [Complex64::ZERO; MAX_RADIX];
    for k in k0..k1 {
        for q in 0..r {
            let mut w = tw[q * m + k];
            if dir == Direction::Inverse {
                w = w.conj();
            }
            t[q] = dst[q * m + k] * w;
        }
        butterfly_into(&t[..r], &mut out[..r], dir, gen);
        for s in 0..r {
            dst[s * m + k] = out[s];
        }
    }
}

/// Deinterleave four consecutive `Complex64` starting at `$idx` into
/// `(re, im)` 4-lane registers.
#[cfg(target_arch = "x86_64")]
macro_rules! ld4 {
    ($dst:expr, $idx:expr) => {{
        // SAFETY: caller guarantees `$idx + 3 < $dst.len()`; `Complex64` is
        // `#[repr(C)] { re, im }`, so four consecutive elements are eight
        // contiguous f64 lanes readable through the cast pointer.
        let p = unsafe { $dst.as_ptr().add($idx).cast::<f64>() };
        // SAFETY: in-bounds unaligned reads of lanes 0..4 and 4..8.
        let ab = unsafe { _mm256_loadu_pd(p) };
        // SAFETY: as above.
        let cd = unsafe { _mm256_loadu_pd(p.add(4)) };
        let lo = _mm256_permute2f128_pd::<0x20>(ab, cd);
        let hi = _mm256_permute2f128_pd::<0x31>(ab, cd);
        (_mm256_unpacklo_pd(lo, hi), _mm256_unpackhi_pd(lo, hi))
    }};
}

/// Interleave `(re, im)` 4-lane registers back into four consecutive
/// `Complex64` at `$idx`.
#[cfg(target_arch = "x86_64")]
macro_rules! st4 {
    ($dst:expr, $idx:expr, $re:expr, $im:expr) => {{
        let lo = _mm256_unpacklo_pd($re, $im);
        let hi = _mm256_unpackhi_pd($re, $im);
        let ab = _mm256_permute2f128_pd::<0x20>(lo, hi);
        let cd = _mm256_permute2f128_pd::<0x31>(lo, hi);
        // SAFETY: same bounds and layout argument as `ld4!`, mutably.
        let p = unsafe { $dst.as_mut_ptr().add($idx).cast::<f64>() };
        // SAFETY: in-bounds unaligned writes of lanes 0..4 and 4..8.
        unsafe { _mm256_storeu_pd(p, ab) };
        // SAFETY: as above.
        unsafe { _mm256_storeu_pd(p.add(4), cd) };
    }};
}

/// Load four twiddles from the SoA tables, conjugating via `$conj`
/// (a sign mask of `-0.0` per lane for inverse transforms, else zeros).
#[cfg(target_arch = "x86_64")]
macro_rules! ldtw {
    ($tre:expr, $tim:expr, $idx:expr, $conj:expr) => {{
        // SAFETY: caller guarantees `$idx + 3` is within the `r*m`-long
        // twiddle tables.
        let wr = unsafe { _mm256_loadu_pd($tre.as_ptr().add($idx)) };
        // SAFETY: as above; `tw_im` has the same length as `tw_re`.
        let wi = unsafe { _mm256_loadu_pd($tim.as_ptr().add($idx)) };
        (wr, _mm256_xor_pd(wi, $conj))
    }};
}

/// Lanewise complex multiply `(zr + i zi) * (wr + i wi)` via FMA.
#[cfg(target_arch = "x86_64")]
macro_rules! cmul {
    ($zr:expr, $zi:expr, $wr:expr, $wi:expr) => {
        (
            _mm256_fmsub_pd($zr, $wr, _mm256_mul_pd($zi, $wi)),
            _mm256_fmadd_pd($zr, $wi, _mm256_mul_pd($zi, $wr)),
        )
    };
}

/// Load four butterfly inputs `t_q = dst[q*m + k .. +4] * tw[q*m + k .. +4]`.
#[cfg(target_arch = "x86_64")]
macro_rules! ldt {
    ($dst:expr, $tre:expr, $tim:expr, $idx:expr, $conj:expr) => {{
        let (zr, zi) = ld4!($dst, $idx);
        let (wr, wi) = ldtw!($tre, $tim, $idx, $conj);
        cmul!(zr, zi, wr, wi)
    }};
}

/// AVX2+FMA combine for radix 2/3/4/5: four butterflies per iteration in
/// split re/im registers; the `m % 4` tail runs through the scalar loop.
///
/// # Safety
/// The caller must ensure the CPU supports the `avx2` and `fma` target
/// features (runtime-detected via `hibd_simd::avx2()`).
#[cfg(target_arch = "x86_64")]
#[hibd::hot]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn combine_avx2(
    dst: &mut [Complex64],
    tw: &[Complex64],
    tw_re: &[f64],
    tw_im: &[f64],
    gen: &[Complex64],
    r: usize,
    m: usize,
    dir: Direction,
) {
    use core::arch::x86_64::*;

    debug_assert!(dst.len() == r * m && tw_re.len() == r * m && tw_im.len() == r * m);
    debug_assert!(m >= 4 && (2..=5).contains(&r));
    let inv = dir == Direction::Inverse;
    // `sgn` matches the scalar butterflies: -1 forward, +1 inverse, applied
    // wherever the scalar kernel multiplies by ±i.
    let sgn = if inv { 1.0 } else { -1.0 };
    let conj = if inv { _mm256_set1_pd(-0.0) } else { _mm256_setzero_pd() };
    let m4 = m & !3;

    match r {
        2 => {
            let mut k = 0;
            while k < m4 {
                let (ar, ai) = ld4!(dst, k);
                let (br, bi) = ldt!(dst, tw_re, tw_im, m + k, conj);
                st4!(dst, k, _mm256_add_pd(ar, br), _mm256_add_pd(ai, bi));
                st4!(dst, m + k, _mm256_sub_pd(ar, br), _mm256_sub_pd(ai, bi));
                k += 4;
            }
        }
        3 => {
            let half = _mm256_set1_pd(0.5);
            let hp = _mm256_set1_pd(sgn * HALF_SQRT3);
            let hm = _mm256_set1_pd(-sgn * HALF_SQRT3);
            let mut k = 0;
            while k < m4 {
                let (t0r, t0i) = ld4!(dst, k);
                let (t1r, t1i) = ldt!(dst, tw_re, tw_im, m + k, conj);
                let (t2r, t2i) = ldt!(dst, tw_re, tw_im, 2 * m + k, conj);
                let sr = _mm256_add_pd(t1r, t2r);
                let si = _mm256_add_pd(t1i, t2i);
                let dr = _mm256_sub_pd(t1r, t2r);
                let di = _mm256_sub_pd(t1i, t2i);
                // m1 = t0 - s/2; m2 = ∓i * sqrt(3)/2 * d.
                let m1r = _mm256_fnmadd_pd(half, sr, t0r);
                let m1i = _mm256_fnmadd_pd(half, si, t0i);
                let m2r = _mm256_mul_pd(hm, di);
                let m2i = _mm256_mul_pd(hp, dr);
                st4!(dst, k, _mm256_add_pd(t0r, sr), _mm256_add_pd(t0i, si));
                st4!(dst, m + k, _mm256_add_pd(m1r, m2r), _mm256_add_pd(m1i, m2i));
                st4!(dst, 2 * m + k, _mm256_sub_pd(m1r, m2r), _mm256_sub_pd(m1i, m2i));
                k += 4;
            }
        }
        4 => {
            let psg = _mm256_set1_pd(sgn);
            let nsg = _mm256_set1_pd(-sgn);
            let mut k = 0;
            while k < m4 {
                let (t0r, t0i) = ld4!(dst, k);
                let (t1r, t1i) = ldt!(dst, tw_re, tw_im, m + k, conj);
                let (t2r, t2i) = ldt!(dst, tw_re, tw_im, 2 * m + k, conj);
                let (t3r, t3i) = ldt!(dst, tw_re, tw_im, 3 * m + k, conj);
                let ar = _mm256_add_pd(t0r, t2r);
                let ai = _mm256_add_pd(t0i, t2i);
                let br = _mm256_sub_pd(t0r, t2r);
                let bi = _mm256_sub_pd(t0i, t2i);
                let cr = _mm256_add_pd(t1r, t3r);
                let ci = _mm256_add_pd(t1i, t3i);
                let er = _mm256_sub_pd(t1r, t3r);
                let ei = _mm256_sub_pd(t1i, t3i);
                // id = ∓i * (t1 - t3).
                let idr = _mm256_mul_pd(nsg, ei);
                let idi = _mm256_mul_pd(psg, er);
                st4!(dst, k, _mm256_add_pd(ar, cr), _mm256_add_pd(ai, ci));
                st4!(dst, m + k, _mm256_add_pd(br, idr), _mm256_add_pd(bi, idi));
                st4!(dst, 2 * m + k, _mm256_sub_pd(ar, cr), _mm256_sub_pd(ai, ci));
                st4!(dst, 3 * m + k, _mm256_sub_pd(br, idr), _mm256_sub_pd(bi, idi));
                k += 4;
            }
        }
        5 => {
            let vc1 = _mm256_set1_pd(C1);
            let vs1 = _mm256_set1_pd(S1);
            let vc2 = _mm256_set1_pd(C2);
            let vs2 = _mm256_set1_pd(S2);
            let psg = _mm256_set1_pd(sgn);
            let nsg = _mm256_set1_pd(-sgn);
            let mut k = 0;
            while k < m4 {
                let (t0r, t0i) = ld4!(dst, k);
                let (t1r, t1i) = ldt!(dst, tw_re, tw_im, m + k, conj);
                let (t2r, t2i) = ldt!(dst, tw_re, tw_im, 2 * m + k, conj);
                let (t3r, t3i) = ldt!(dst, tw_re, tw_im, 3 * m + k, conj);
                let (t4r, t4i) = ldt!(dst, tw_re, tw_im, 4 * m + k, conj);
                let ar = _mm256_add_pd(t1r, t4r);
                let ai = _mm256_add_pd(t1i, t4i);
                let br = _mm256_sub_pd(t1r, t4r);
                let bi = _mm256_sub_pd(t1i, t4i);
                let cr = _mm256_add_pd(t2r, t3r);
                let ci = _mm256_add_pd(t2i, t3i);
                let dr = _mm256_sub_pd(t2r, t3r);
                let di = _mm256_sub_pd(t2i, t3i);
                // re1 = t0 + C1 a + C2 c ; re2 = t0 + C2 a + C1 c.
                let re1r = _mm256_fmadd_pd(vc2, cr, _mm256_fmadd_pd(vc1, ar, t0r));
                let re1i = _mm256_fmadd_pd(vc2, ci, _mm256_fmadd_pd(vc1, ai, t0i));
                let re2r = _mm256_fmadd_pd(vc1, cr, _mm256_fmadd_pd(vc2, ar, t0r));
                let re2i = _mm256_fmadd_pd(vc1, ci, _mm256_fmadd_pd(vc2, ai, t0i));
                // im1 = ±i (S1 b + S2 d) ; im2 = ±i (S2 b - S1 d).
                let z1r = _mm256_fmadd_pd(vs2, dr, _mm256_mul_pd(vs1, br));
                let z1i = _mm256_fmadd_pd(vs2, di, _mm256_mul_pd(vs1, bi));
                let z2r = _mm256_fnmadd_pd(vs1, dr, _mm256_mul_pd(vs2, br));
                let z2i = _mm256_fnmadd_pd(vs1, di, _mm256_mul_pd(vs2, bi));
                let im1r = _mm256_mul_pd(nsg, z1i);
                let im1i = _mm256_mul_pd(psg, z1r);
                let im2r = _mm256_mul_pd(nsg, z2i);
                let im2i = _mm256_mul_pd(psg, z2r);
                let or0 = _mm256_add_pd(t0r, _mm256_add_pd(ar, cr));
                let oi0 = _mm256_add_pd(t0i, _mm256_add_pd(ai, ci));
                st4!(dst, k, or0, oi0);
                st4!(dst, m + k, _mm256_add_pd(re1r, im1r), _mm256_add_pd(re1i, im1i));
                st4!(dst, 2 * m + k, _mm256_add_pd(re2r, im2r), _mm256_add_pd(re2i, im2i));
                st4!(dst, 3 * m + k, _mm256_sub_pd(re2r, im2r), _mm256_sub_pd(re2i, im2i));
                st4!(dst, 4 * m + k, _mm256_sub_pd(re1r, im1r), _mm256_sub_pd(re1i, im1i));
                k += 4;
            }
        }
        _ => unreachable!("combine_avx2 dispatch covers radix 2..=5 only"),
    }

    combine_scalar(dst, tw, gen, r, m, dir, m4, m);
}
