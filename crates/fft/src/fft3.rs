//! 3D real-to-complex / complex-to-real FFT.
//!
//! Layout: a real array with dims `[n0][n1][n2]`, `n2` fastest (row-major,
//! matching the paper's `F_theta(k1, k2, k3)` mesh with `k3` fastest). The
//! half spectrum has dims `[n0][n1][nc]` with `nc = n2/2 + 1`.
//!
//! Axis `n2` uses the packed real transform; axes `n1` and `n0` are complex
//! transforms over strided lines, processed by gathering each line into a
//! contiguous buffer. Lines are batched with Rayon: the `n2`/`n1` passes
//! parallelize over `i0`-planes (disjoint chunks), the `n0` pass over
//! `(i1)`-slabs of a gathered transpose.

use crate::complex::Complex64;
use crate::lanes::{self, C4, LANES};
use crate::plan::{Direction, FftError, FftPlan};
use crate::real::RealFftPlan;
use rayon::prelude::*;

/// Reusable 3D r2c/c2r transform for fixed dims.
#[derive(Debug)]
pub struct Fft3 {
    dims: [usize; 3],
    rplan: RealFftPlan,
    plan1: FftPlan,
    plan0: FftPlan,
}

impl Fft3 {
    /// Build a transform for real dims `[n0, n1, n2]` (`n2` even).
    pub fn new(dims: [usize; 3]) -> Result<Fft3, FftError> {
        let [n0, n1, n2] = dims;
        Ok(Fft3 {
            dims,
            rplan: RealFftPlan::new(n2)?,
            plan1: FftPlan::new(n1)?,
            plan0: FftPlan::new(n0)?,
        })
    }

    /// Real-array dims `[n0, n1, n2]`.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Real array length `n0 * n1 * n2`.
    pub fn real_len(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Half-spectrum length `n0 * n1 * (n2/2 + 1)`.
    pub fn spectrum_len(&self) -> usize {
        self.dims[0] * self.dims[1] * (self.dims[2] / 2 + 1)
    }

    /// Number of complex coefficients along the fastest axis, `n2/2 + 1`.
    pub fn nc(&self) -> usize {
        self.dims[2] / 2 + 1
    }

    /// Forward r2c transform (unnormalized, `e^{-2 pi i}`).
    ///
    /// `spectrum[(k0*n1 + k1)*nc + k2] = Σ_j real[j] e^{-2 pi i (j·k)/(n)}`
    /// for `k2 in 0..=n2/2`; the missing `k2` follow from the Hermitian
    /// symmetry of a real signal.
    pub fn forward(&self, real: &[f64], spectrum: &mut [Complex64]) {
        let [n0, n1, n2] = self.dims;
        let nc = self.nc();
        assert_eq!(real.len(), n0 * n1 * n2, "real length mismatch");
        assert_eq!(spectrum.len(), n0 * n1 * nc, "spectrum length mismatch");
        hibd_telemetry::incr(hibd_telemetry::Counter::ForwardFfts, 1);

        // Pass 1: r2c along n2, plane-parallel over i0 (and rows within).
        spectrum.par_chunks_mut(n1 * nc).zip(real.par_chunks(n1 * n2)).for_each(
            |(spec_plane, real_plane)| {
                let mut scratch = vec![Complex64::ZERO; self.rplan.scratch_len()];
                for i1 in 0..n1 {
                    self.rplan.forward(
                        &real_plane[i1 * n2..(i1 + 1) * n2],
                        &mut spec_plane[i1 * nc..(i1 + 1) * nc],
                        &mut scratch,
                    );
                }
            },
        );

        // Pass 2: complex FFT along n1 (stride nc within each i0-plane).
        self.pass_axis1(spectrum, false);
        // Pass 3: complex FFT along n0 (stride n1*nc).
        self.pass_axis0(spectrum, false);
    }

    /// Inverse c2r transform (unnormalized, `e^{+2 pi i}`):
    /// `inverse(forward(x)) = n0*n1*n2 * x`. Destroys `spectrum`.
    pub fn inverse(&self, spectrum: &mut [Complex64], real: &mut [f64]) {
        let [n0, n1, n2] = self.dims;
        let nc = self.nc();
        assert_eq!(real.len(), n0 * n1 * n2, "real length mismatch");
        assert_eq!(spectrum.len(), n0 * n1 * nc, "spectrum length mismatch");
        hibd_telemetry::incr(hibd_telemetry::Counter::InverseFfts, 1);

        self.pass_axis0(spectrum, true);
        self.pass_axis1(spectrum, true);

        real.par_chunks_mut(n1 * n2).zip(spectrum.par_chunks(n1 * nc)).for_each(
            |(real_plane, spec_plane)| {
                let mut scratch = vec![Complex64::ZERO; self.rplan.scratch_len()];
                for i1 in 0..n1 {
                    self.rplan.inverse(
                        &spec_plane[i1 * nc..(i1 + 1) * nc],
                        &mut real_plane[i1 * n2..(i1 + 1) * n2],
                        &mut scratch,
                    );
                }
            },
        );
    }

    /// Forward r2c transforms of `batch` concatenated meshes through this
    /// one plan (shared twiddles). *Bitwise* identical to `batch` calls of
    /// [`Fft3::forward`] on consecutive `real_len()` / `spectrum_len()`
    /// chunks, but groups of four meshes move through every 1D line
    /// transform together in lane-bundled form (see `lanes.rs`) — the
    /// "3D FFTs for blocks of vectors" the paper notes no library provides
    /// (Sec. III-B). The `batch % 4` remainder (or the whole batch when a
    /// dimension needs the Bluestein fallback) runs the per-mesh pipeline.
    pub fn forward_batch(&self, reals: &[f64], spectra: &mut [Complex64], batch: usize) {
        let [n0, n1, n2] = self.dims;
        let nc = self.nc();
        assert_eq!(reals.len(), batch * n0 * n1 * n2, "batched real length mismatch");
        assert_eq!(spectra.len(), batch * n0 * n1 * nc, "batched spectrum length mismatch");
        hibd_telemetry::incr(hibd_telemetry::Counter::ForwardFfts, batch as u64);

        let (rl, sl) = (n0 * n1 * n2, n0 * n1 * nc);
        let quads = if self.lanes_supported() { batch / LANES } else { 0 };
        if quads > 0 {
            spectra[..quads * LANES * sl]
                .par_chunks_mut(LANES * sl)
                .zip(reals[..quads * LANES * rl].par_chunks(LANES * rl))
                .for_each_init(
                    || self.quad_scratch(),
                    |(line, slab, fft), (spec4, real4)| {
                        self.forward_quad(real4, spec4, line, slab, fft);
                    },
                );
        }
        let reals = &reals[quads * LANES * rl..];
        let spectra = &mut spectra[quads * LANES * sl..];
        if reals.is_empty() {
            return;
        }

        // Remainder: r2c along n2 over all tail planes at once, then the
        // strided axis passes (their plane chunking spans the tail meshes
        // transparently).
        spectra.par_chunks_mut(n1 * nc).zip(reals.par_chunks(n1 * n2)).for_each_init(
            || vec![Complex64::ZERO; self.rplan.scratch_len()],
            |scratch, (spec_plane, real_plane)| {
                for i1 in 0..n1 {
                    self.rplan.forward(
                        &real_plane[i1 * n2..(i1 + 1) * n2],
                        &mut spec_plane[i1 * nc..(i1 + 1) * nc],
                        scratch,
                    );
                }
            },
        );
        self.pass_axis1(spectra, false);
        self.pass_axis0_batch(spectra, false);
    }

    /// Inverse c2r transforms of `batch` concatenated half spectra (same
    /// unnormalized convention as [`Fft3::inverse`]:
    /// `inverse_batch(forward_batch(x)) = n0*n1*n2 * x`). Destroys `spectra`.
    /// Bitwise identical to per-mesh [`Fft3::inverse`] calls, with groups of
    /// four meshes lane-bundled exactly like [`Fft3::forward_batch`].
    pub fn inverse_batch(&self, spectra: &mut [Complex64], reals: &mut [f64], batch: usize) {
        let [n0, n1, n2] = self.dims;
        let nc = self.nc();
        assert_eq!(reals.len(), batch * n0 * n1 * n2, "batched real length mismatch");
        assert_eq!(spectra.len(), batch * n0 * n1 * nc, "batched spectrum length mismatch");
        hibd_telemetry::incr(hibd_telemetry::Counter::InverseFfts, batch as u64);

        let (rl, sl) = (n0 * n1 * n2, n0 * n1 * nc);
        let quads = if self.lanes_supported() { batch / LANES } else { 0 };
        if quads > 0 {
            reals[..quads * LANES * rl]
                .par_chunks_mut(LANES * rl)
                .zip(spectra[..quads * LANES * sl].par_chunks_mut(LANES * sl))
                .for_each_init(
                    || self.quad_scratch(),
                    |(line, slab, fft), (real4, spec4)| {
                        self.inverse_quad(spec4, real4, line, slab, fft);
                    },
                );
        }
        let reals = &mut reals[quads * LANES * rl..];
        let spectra = &mut spectra[quads * LANES * sl..];
        if reals.is_empty() {
            return;
        }

        self.pass_axis0_batch(spectra, true);
        self.pass_axis1(spectra, true);

        reals.par_chunks_mut(n1 * n2).zip(spectra.par_chunks(n1 * nc)).for_each_init(
            || vec![Complex64::ZERO; self.rplan.scratch_len()],
            |scratch, (real_plane, spec_plane)| {
                for i1 in 0..n1 {
                    self.rplan.inverse(
                        &spec_plane[i1 * nc..(i1 + 1) * nc],
                        &mut real_plane[i1 * n2..(i1 + 1) * n2],
                        scratch,
                    );
                }
            },
        );
    }

    /// Whether the lane-batched quad path is available: every 1D plan must
    /// be mixed-radix (the Bluestein fallback has no lane mirror).
    fn lanes_supported(&self) -> bool {
        !self.rplan.half_plan().is_bluestein()
            && !self.plan1.is_bluestein()
            && !self.plan0.is_bluestein()
    }

    /// Per-worker buffers for one lane group: a line bundle (reused by the
    /// r2c/c2r pass and the axis-1 pass), the axis-0 transpose slab, and the
    /// 1D-plan scratch sized for the largest of the three plans.
    #[allow(clippy::type_complexity)]
    fn quad_scratch(&self) -> (Vec<C4>, Vec<C4>, Vec<C4>) {
        let [n0, n1, _] = self.dims;
        let nc = self.nc();
        let fft =
            self.rplan.scratch_len().max(self.plan1.scratch_len()).max(self.plan0.scratch_len());
        (vec![C4::ZERO; n1.max(nc)], vec![C4::ZERO; n0 * nc], vec![C4::ZERO; fft])
    }

    /// Forward transform of one lane group: `reals` / `spectra` hold four
    /// concatenated meshes. Every pass mirrors the per-mesh pass structure
    /// with the four meshes bundled per line.
    fn forward_quad(
        &self,
        reals: &[f64],
        spectra: &mut [Complex64],
        line: &mut [C4],
        slab: &mut [C4],
        fft: &mut [C4],
    ) {
        let [n0, n1, n2] = self.dims;
        let nc = self.nc();
        let (rl, sl) = (n0 * n1 * n2, n0 * n1 * nc);
        let (r0, rest) = reals.split_at(rl);
        let (r1, rest) = rest.split_at(rl);
        let (r2, r3) = rest.split_at(rl);

        // Pass 1: r2c along n2, four mesh rows per call.
        for row in 0..n0 * n1 {
            let (a, b) = (row * n2, (row + 1) * n2);
            lanes::real4_forward(
                &self.rplan,
                [&r0[a..b], &r1[a..b], &r2[a..b], &r3[a..b]],
                &mut line[..nc],
                fft,
            );
            for k2 in 0..nc {
                for l in 0..LANES {
                    spectra[l * sl + row * nc + k2] =
                        Complex64::new(line[k2].re[l], line[k2].im[l]);
                }
            }
        }

        self.quad_axis1(spectra, line, fft, Direction::Forward);
        self.quad_axis0(spectra, slab, fft, Direction::Forward);
    }

    /// Inverse transform of one lane group (reverse pass order). Destroys
    /// `spectra`.
    fn inverse_quad(
        &self,
        spectra: &mut [Complex64],
        reals: &mut [f64],
        line: &mut [C4],
        slab: &mut [C4],
        fft: &mut [C4],
    ) {
        let [n0, n1, n2] = self.dims;
        let nc = self.nc();
        let (rl, sl) = (n0 * n1 * n2, n0 * n1 * nc);

        self.quad_axis0(spectra, slab, fft, Direction::Inverse);
        self.quad_axis1(spectra, line, fft, Direction::Inverse);

        let (r0, rest) = reals.split_at_mut(rl);
        let (r1, rest) = rest.split_at_mut(rl);
        let (r2, r3) = rest.split_at_mut(rl);
        for row in 0..n0 * n1 {
            for k2 in 0..nc {
                for l in 0..LANES {
                    let v = spectra[l * sl + row * nc + k2];
                    line[k2].re[l] = v.re;
                    line[k2].im[l] = v.im;
                }
            }
            let (a, b) = (row * n2, (row + 1) * n2);
            lanes::real4_inverse(
                &self.rplan,
                &line[..nc],
                [&mut r0[a..b], &mut r1[a..b], &mut r2[a..b], &mut r3[a..b]],
                fft,
            );
        }
    }

    /// Axis-1 pass of one lane group: gather each stride-`nc` line of the
    /// four meshes into a `C4` line, transform, scatter back.
    fn quad_axis1(
        &self,
        spectra: &mut [Complex64],
        line: &mut [C4],
        fft: &mut [C4],
        dir: Direction,
    ) {
        let [n0, n1, _] = self.dims;
        let nc = self.nc();
        if n1 == 1 {
            return;
        }
        let sl = n0 * n1 * nc;
        for i0 in 0..n0 {
            for k2 in 0..nc {
                for i1 in 0..n1 {
                    let idx = (i0 * n1 + i1) * nc + k2;
                    for l in 0..LANES {
                        let v = spectra[l * sl + idx];
                        line[i1].re[l] = v.re;
                        line[i1].im[l] = v.im;
                    }
                }
                lanes::process4(&self.plan1, &mut line[..n1], fft, dir);
                for i1 in 0..n1 {
                    let idx = (i0 * n1 + i1) * nc + k2;
                    for l in 0..LANES {
                        spectra[l * sl + idx] = Complex64::new(line[i1].re[l], line[i1].im[l]);
                    }
                }
            }
        }
    }

    /// Axis-0 pass of one lane group: same `i1`-slab transpose walk as the
    /// per-mesh pass, with `C4` slab entries.
    fn quad_axis0(
        &self,
        spectra: &mut [Complex64],
        slab: &mut [C4],
        fft: &mut [C4],
        dir: Direction,
    ) {
        let [n0, n1, _] = self.dims;
        let nc = self.nc();
        if n0 == 1 {
            return;
        }
        let sl = n0 * n1 * nc;
        let plane_stride = n1 * nc;
        for i1 in 0..n1 {
            for i0 in 0..n0 {
                let base = i0 * plane_stride + i1 * nc;
                for k2 in 0..nc {
                    for l in 0..LANES {
                        let v = spectra[l * sl + base + k2];
                        slab[k2 * n0 + i0].re[l] = v.re;
                        slab[k2 * n0 + i0].im[l] = v.im;
                    }
                }
            }
            for line in slab.chunks_mut(n0) {
                lanes::process4(&self.plan0, line, fft, dir);
            }
            for i0 in 0..n0 {
                let base = i0 * plane_stride + i1 * nc;
                for k2 in 0..nc {
                    for l in 0..LANES {
                        spectra[l * sl + base + k2] =
                            Complex64::new(slab[k2 * n0 + i0].re[l], slab[k2 * n0 + i0].im[l]);
                    }
                }
            }
        }
    }

    /// Complex transform along axis 1. Lines have stride `nc` inside each
    /// `i0`-plane; planes are disjoint, so we parallelize across them.
    fn pass_axis1(&self, spectrum: &mut [Complex64], inverse: bool) {
        let [_, n1, _] = self.dims;
        let nc = self.nc();
        if n1 == 1 {
            return;
        }
        spectrum.par_chunks_mut(n1 * nc).for_each(|plane| {
            let mut line = vec![Complex64::ZERO; n1];
            let mut scratch = vec![Complex64::ZERO; self.plan1.scratch_len()];
            for k2 in 0..nc {
                for i1 in 0..n1 {
                    line[i1] = plane[i1 * nc + k2];
                }
                if inverse {
                    self.plan1.inverse(&mut line, &mut scratch);
                } else {
                    self.plan1.forward(&mut line, &mut scratch);
                }
                for i1 in 0..n1 {
                    plane[i1 * nc + k2] = line[i1];
                }
            }
        });
    }

    /// Complex transform along axis 0. Lines have stride `n1*nc`; we walk
    /// `i1`-slabs sequentially (their elements interleave in memory) and
    /// parallelize the `nc` lines inside each gathered slab.
    fn pass_axis0(&self, spectrum: &mut [Complex64], inverse: bool) {
        let [n0, n1, _] = self.dims;
        let nc = self.nc();
        if n0 == 1 {
            return;
        }
        let plane_stride = n1 * nc;
        let mut slab = vec![Complex64::ZERO; n0 * nc]; // [k2][i0]
        for i1 in 0..n1 {
            // Gather: slab[k2*n0 + i0] = spectrum[(i0*n1 + i1)*nc + k2]
            for i0 in 0..n0 {
                let base = i0 * plane_stride + i1 * nc;
                for k2 in 0..nc {
                    slab[k2 * n0 + i0] = spectrum[base + k2];
                }
            }
            slab.par_chunks_mut(n0).for_each(|line| {
                let mut scratch = vec![Complex64::ZERO; self.plan0.scratch_len()];
                if inverse {
                    self.plan0.inverse(line, &mut scratch);
                } else {
                    self.plan0.forward(line, &mut scratch);
                }
            });
            for i0 in 0..n0 {
                let base = i0 * plane_stride + i1 * nc;
                for k2 in 0..nc {
                    spectrum[base + k2] = slab[k2 * n0 + i0];
                }
            }
        }
    }

    /// Axis-0 pass over `batch` concatenated spectra. Each spectrum is an
    /// independent `n0*n1*nc` block, so the batch itself is the parallel
    /// dimension and each worker reuses one gathered slab + one scratch
    /// buffer across all its `i1`-slabs — the twiddle/plan state in
    /// `plan0` is shared read-only by every mesh in the batch.
    fn pass_axis0_batch(&self, spectra: &mut [Complex64], inverse: bool) {
        let [n0, n1, _] = self.dims;
        let nc = self.nc();
        if n0 == 1 {
            return;
        }
        let plane_stride = n1 * nc;
        spectra.par_chunks_mut(n0 * plane_stride).for_each_init(
            || (vec![Complex64::ZERO; n0 * nc], vec![Complex64::ZERO; self.plan0.scratch_len()]),
            |(slab, scratch), spectrum| {
                for i1 in 0..n1 {
                    // Gather: slab[k2*n0 + i0] = spectrum[(i0*n1 + i1)*nc + k2]
                    for i0 in 0..n0 {
                        let base = i0 * plane_stride + i1 * nc;
                        for k2 in 0..nc {
                            slab[k2 * n0 + i0] = spectrum[base + k2];
                        }
                    }
                    for line in slab.chunks_mut(n0) {
                        if inverse {
                            self.plan0.inverse(line, scratch);
                        } else {
                            self.plan0.forward(line, scratch);
                        }
                    }
                    for i0 in 0..n0 {
                        let base = i0 * plane_stride + i1 * nc;
                        for k2 in 0..nc {
                            spectrum[base + k2] = slab[k2 * n0 + i0];
                        }
                    }
                }
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft3_forward_real;

    fn random_real(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn forward_matches_naive_3d_dft() {
        for dims in [[4usize, 6, 8], [3, 5, 4], [2, 2, 2], [1, 4, 6], [5, 1, 10], [8, 8, 8]] {
            let [n0, n1, n2] = dims;
            let fft = Fft3::new(dims).unwrap();
            let x = random_real(n0 * n1 * n2, (n0 * 100 + n1 * 10 + n2) as u64);
            let mut spec = vec![Complex64::ZERO; fft.spectrum_len()];
            fft.forward(&x, &mut spec);
            let want = dft3_forward_real(&x, dims);
            let nc = n2 / 2 + 1;
            for k0 in 0..n0 {
                for k1 in 0..n1 {
                    for k2 in 0..nc {
                        let got = spec[(k0 * n1 + k1) * nc + k2];
                        let w = want[(k0 * n1 + k1) * n2 + k2];
                        assert!(
                            (got - w).abs() < 1e-10,
                            "dims {dims:?} k=({k0},{k1},{k2}): {got:?} vs {w:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn roundtrip_scales_by_total_size() {
        for dims in [[4usize, 4, 4], [6, 5, 8], [2, 3, 10], [16, 16, 16], [10, 10, 10]] {
            let [n0, n1, n2] = dims;
            let total = (n0 * n1 * n2) as f64;
            let fft = Fft3::new(dims).unwrap();
            let x = random_real(n0 * n1 * n2, 42);
            let mut spec = vec![Complex64::ZERO; fft.spectrum_len()];
            fft.forward(&x, &mut spec);
            let mut y = vec![0.0; x.len()];
            fft.inverse(&mut spec, &mut y);
            for (a, b) in x.iter().zip(&y) {
                assert!((b / total - a).abs() < 1e-11, "dims {dims:?}");
            }
        }
    }

    #[test]
    fn forward_batch_matches_per_mesh_loop() {
        // Odd and even slow dims, batch sizes straddling the plan count.
        for (dims, batch) in
            [([4usize, 6, 8], 3usize), ([3, 5, 4], 5), ([8, 8, 8], 1), ([5, 1, 10], 4)]
        {
            let [n0, n1, n2] = dims;
            let fft = Fft3::new(dims).unwrap();
            let rl = n0 * n1 * n2;
            let sl = fft.spectrum_len();
            let x = random_real(batch * rl, (n0 * 1000 + batch) as u64);
            let mut spec_batch = vec![Complex64::ZERO; batch * sl];
            fft.forward_batch(&x, &mut spec_batch, batch);
            for b in 0..batch {
                let mut spec_one = vec![Complex64::ZERO; sl];
                fft.forward(&x[b * rl..(b + 1) * rl], &mut spec_one);
                for i in 0..sl {
                    assert!(
                        (spec_batch[b * sl + i] - spec_one[i]).abs() < 1e-12,
                        "dims {dims:?} mesh {b} idx {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn inverse_batch_roundtrip_scales_by_total_size() {
        // Same unnormalized convention as the single-mesh transforms:
        // inverse_batch(forward_batch(x)) = n0*n1*n2 * x per mesh.
        for (dims, batch) in [([4usize, 4, 4], 6usize), ([6, 5, 8], 2), ([2, 3, 10], 7)] {
            let [n0, n1, n2] = dims;
            let total = (n0 * n1 * n2) as f64;
            let fft = Fft3::new(dims).unwrap();
            let rl = n0 * n1 * n2;
            let x = random_real(batch * rl, 1234 + batch as u64);
            let mut spec = vec![Complex64::ZERO; batch * fft.spectrum_len()];
            fft.forward_batch(&x, &mut spec, batch);
            let mut y = vec![0.0; batch * rl];
            fft.inverse_batch(&mut spec, &mut y, batch);
            for (i, (a, b)) in x.iter().zip(&y).enumerate() {
                assert!(
                    (b / total - a).abs() < 1e-11,
                    "dims {dims:?} flat idx {i}: {a} vs {}",
                    b / total
                );
            }
        }
    }

    /// Forward + inverse batch must be *bitwise* equal to per-mesh
    /// transforms: the ensemble engine's replicas are compared bitwise
    /// against standalone runs, and the lane-batched quad path must not
    /// perturb a single ulp.
    fn assert_batch_bitwise(dims: [usize; 3], batch: usize) {
        let [n0, n1, n2] = dims;
        let fft = Fft3::new(dims).unwrap();
        let rl = n0 * n1 * n2;
        let sl = fft.spectrum_len();
        let x = random_real(batch * rl, (n0 * 997 + n1 * 131 + n2 * 13 + batch) as u64);
        let mut spec_batch = vec![Complex64::ZERO; batch * sl];
        fft.forward_batch(&x, &mut spec_batch, batch);
        let mut real_batch = vec![0.0; batch * rl];
        let mut spec_copy = spec_batch.clone();
        fft.inverse_batch(&mut spec_copy, &mut real_batch, batch);
        for b in 0..batch {
            let mut spec_one = vec![Complex64::ZERO; sl];
            fft.forward(&x[b * rl..(b + 1) * rl], &mut spec_one);
            for i in 0..sl {
                let (got, want) = (spec_batch[b * sl + i], spec_one[i]);
                assert_eq!(
                    (got.re.to_bits(), got.im.to_bits()),
                    (want.re.to_bits(), want.im.to_bits()),
                    "dims {dims:?} batch {batch} mesh {b} idx {i} (fwd)"
                );
            }
            let mut real_one = vec![0.0; rl];
            fft.inverse(&mut spec_one, &mut real_one);
            for i in 0..rl {
                assert_eq!(
                    real_batch[b * rl + i].to_bits(),
                    real_one[i].to_bits(),
                    "dims {dims:?} batch {batch} mesh {b} idx {i} (inv)"
                );
            }
        }
    }

    #[test]
    fn batch_transforms_are_bitwise_identical_to_single() {
        // Lane groups plus tails, generic radices (7, 11, 13) on every axis,
        // n0 == 1 / n1 == 1 early-outs, and a radix-11 real axis.
        for (dims, batch) in [
            ([22usize, 6, 8], 4usize),
            ([7, 5, 4], 5),
            ([11, 4, 6], 7),
            ([6, 11, 8], 4),
            ([4, 6, 22], 5),
            ([13, 3, 4], 4),
            ([5, 1, 10], 4),
            ([1, 5, 8], 4),
            ([8, 8, 8], 6),
        ] {
            assert_batch_bitwise(dims, batch);
        }
    }

    #[test]
    fn batch_with_bluestein_axis_skips_lane_path() {
        // 17 is rough: the affected 1D plan falls back to Bluestein, the
        // quad path is gated off, and the batch must still match per-mesh.
        for (dims, batch) in [([17usize, 4, 6], 4usize), ([4, 17, 6], 5), ([4, 6, 34], 4)] {
            assert_batch_bitwise(dims, batch);
        }
    }

    #[test]
    fn delta_input_gives_flat_spectrum() {
        let dims = [4usize, 4, 4];
        let fft = Fft3::new(dims).unwrap();
        let mut x = vec![0.0; 64];
        x[0] = 1.0;
        let mut spec = vec![Complex64::ZERO; fft.spectrum_len()];
        fft.forward(&x, &mut spec);
        for v in &spec {
            assert!((*v - Complex64::ONE).abs() < 1e-13);
        }
    }

    #[test]
    fn constant_input_concentrates_at_dc() {
        let dims = [4usize, 6, 8];
        let fft = Fft3::new(dims).unwrap();
        let x = vec![2.0; 4 * 6 * 8];
        let mut spec = vec![Complex64::ZERO; fft.spectrum_len()];
        fft.forward(&x, &mut spec);
        assert!((spec[0].re - 2.0 * 192.0).abs() < 1e-10);
        assert!(spec[0].im.abs() < 1e-10);
        for v in &spec[1..] {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_odd_fastest_dim() {
        assert!(Fft3::new([4, 4, 5]).is_err());
        assert!(Fft3::new([5, 5, 4]).is_ok());
    }

    #[test]
    fn parseval_3d() {
        // For a real signal: sum x^2 = (1/N) [ |X|^2 over full spectrum ].
        // Reconstruct the full-spectrum energy from the half spectrum.
        let dims = [6usize, 4, 8];
        let [n0, n1, n2] = dims;
        let nc = n2 / 2 + 1;
        let fft = Fft3::new(dims).unwrap();
        let x = random_real(n0 * n1 * n2, 7);
        let mut spec = vec![Complex64::ZERO; fft.spectrum_len()];
        fft.forward(&x, &mut spec);
        let mut freq_energy = 0.0;
        for k0 in 0..n0 {
            for k1 in 0..n1 {
                for k2 in 0..nc {
                    let e = spec[(k0 * n1 + k1) * nc + k2].norm2();
                    // Interior k2 represent two conjugate coefficients.
                    let w = if k2 == 0 || k2 == n2 / 2 { 1.0 } else { 2.0 };
                    freq_energy += w * e;
                }
            }
        }
        freq_energy /= (n0 * n1 * n2) as f64;
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        assert!((time_energy - freq_energy).abs() < 1e-10 * time_energy);
    }
}
