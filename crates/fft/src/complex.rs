//! A minimal double-precision complex number.
//!
//! Only the operations the FFT and the PME influence function need; kept
//! `#[repr(C)]` so a `&[Complex64]` can be treated as interleaved
//! `re, im, re, im, ...` storage (the layout MKL calls `DFTI_COMPLEX`).

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Complex number `re + i * im` in double precision.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Complex64 {
    pub re: f64,
    pub im: f64,
}

impl Complex64 {
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// `e^{i theta} = cos(theta) + i sin(theta)`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex64::new(c, s)
    }

    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64::new(self.re * s, self.im * s)
    }

    /// Multiply by the imaginary unit: `i * z = -im + i re`.
    #[inline]
    pub fn mul_i(self) -> Self {
        Complex64::new(-self.im, self.re)
    }

    /// Multiply by `-i`: `-i * z = im - i re`.
    #[inline]
    pub fn mul_neg_i(self) -> Self {
        Complex64::new(self.im, -self.re)
    }

    #[inline]
    pub fn norm2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    #[inline]
    pub fn abs(self) -> f64 {
        self.norm2().sqrt()
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, o: Complex64) -> Complex64 {
        Complex64::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, o: Complex64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, o: Complex64) -> Complex64 {
        Complex64::new(self.re - o.re, self.im - o.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, o: Complex64) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, o: Complex64) -> Complex64 {
        Complex64::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, o: Complex64) {
        *self = *self * o;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, s: f64) -> Complex64 {
        self.scale(s)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex64::new(1.0, -2.0));
        assert_eq!(a.scale(2.0), Complex64::new(2.0, 4.0));
    }

    #[test]
    fn mul_i_identities() {
        let z = Complex64::new(0.3, -0.7);
        assert_eq!(z.mul_i(), Complex64::I * z);
        assert_eq!(z.mul_neg_i(), (-Complex64::I) * z);
        assert_eq!(z.mul_i().mul_neg_i(), z);
    }

    #[test]
    fn cis_unit_circle() {
        use std::f64::consts::PI;
        let z = Complex64::cis(PI / 2.0);
        assert!((z.re).abs() < 1e-15);
        assert!((z.im - 1.0).abs() < 1e-15);
        assert!((Complex64::cis(0.7).abs() - 1.0).abs() < 1e-15);
        // Group property: cis(a) * cis(b) = cis(a + b)
        let (a, b) = (0.4, -1.3);
        let lhs = Complex64::cis(a) * Complex64::cis(b);
        let rhs = Complex64::cis(a + b);
        assert!((lhs - rhs).abs() < 1e-15);
    }

    #[test]
    fn norms() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.norm2(), 25.0);
        assert_eq!(z.abs(), 5.0);
    }
}
