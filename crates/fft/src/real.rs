//! 1D real-to-complex and complex-to-real transforms.
//!
//! A length-`n` real transform is computed with one length-`n/2` complex FFT
//! via the classic even/odd packing, halving both flops and memory traffic —
//! this is the "real-to-complex forward FFT and complex-to-real inverse FFT"
//! usage of MKL the paper relies on (Section IV-B3).
//!
//! Conventions match [`crate::plan`]: forward is `e^{-2 pi i}`, inverse is
//! `e^{+2 pi i}`, both unnormalized (`inverse(forward(x)) = n x`).

use crate::complex::Complex64;
use crate::plan::{FftError, FftPlan};
use std::f64::consts::TAU;

/// Plan for real transforms of fixed even length `n`.
///
/// The spectrum is stored as the `n/2 + 1` non-redundant coefficients
/// `X[0..=n/2]`; the remainder follows from `X[n-k] = conj(X[k])`.
#[derive(Debug)]
pub struct RealFftPlan {
    n: usize,
    half: FftPlan,
    /// `e^{-2 pi i k / n}` for `k in 0..=n/2`.
    tw: Vec<Complex64>,
}

impl RealFftPlan {
    /// The inner half-length complex plan (lane-batched r2c mirrors the
    /// even/odd packing around it).
    pub(crate) fn half_plan(&self) -> &FftPlan {
        &self.half
    }

    /// Unpack twiddles `e^{-2 pi i k / n}`, `k in 0..=n/2`.
    pub(crate) fn unpack_twiddles(&self) -> &[Complex64] {
        &self.tw
    }
}

impl RealFftPlan {
    pub fn new(n: usize) -> Result<RealFftPlan, FftError> {
        if n == 0 {
            return Err(FftError::ZeroLength);
        }
        if !n.is_multiple_of(2) {
            return Err(FftError::OddRealLength { n });
        }
        let half = FftPlan::new(n / 2)?;
        let tw = (0..=n / 2).map(|k| Complex64::cis(-TAU * k as f64 / n as f64)).collect();
        Ok(RealFftPlan { n, half, tw })
    }

    /// Real signal length `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of stored spectrum coefficients, `n/2 + 1`.
    pub fn spectrum_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Scratch length (complex elements) required by both transforms: the
    /// packed half-length signal plus whatever the inner complex plan needs
    /// (which exceeds `n/2` when the half length takes the Bluestein path).
    pub fn scratch_len(&self) -> usize {
        self.n / 2 + self.half.scratch_len()
    }

    /// Forward r2c transform: `spectrum[k] = Σ_j input[j] e^{-2 pi i jk/n}`
    /// for `k in 0..=n/2`.
    pub fn forward(&self, input: &[f64], spectrum: &mut [Complex64], scratch: &mut [Complex64]) {
        let n = self.n;
        let m = n / 2;
        assert_eq!(input.len(), n, "input length mismatch");
        assert_eq!(spectrum.len(), m + 1, "spectrum length mismatch");
        assert!(scratch.len() >= self.scratch_len(), "scratch too small");
        let (z, fft_scratch) = scratch.split_at_mut(m);

        // Pack x[2j] + i x[2j+1] and transform at half length.
        for (j, zj) in z.iter_mut().enumerate() {
            *zj = Complex64::new(input[2 * j], input[2 * j + 1]);
        }
        self.half.forward(z, fft_scratch);

        // Unpack: E[k] = (Z[k] + conj(Z[m-k]))/2 is the spectrum of the even
        // samples, O[k] = (Z[k] - conj(Z[m-k]))/(2i) of the odd samples, and
        // X[k] = E[k] + e^{-2 pi i k/n} O[k].
        for k in 0..=m {
            let zk = z[k % m];
            let zmk = z[(m - k) % m].conj();
            let e = (zk + zmk).scale(0.5);
            let o = (zk - zmk).scale(0.5).mul_neg_i();
            spectrum[k] = e + self.tw[k] * o;
        }
    }

    /// Inverse c2r transform (unnormalized): reconstructs
    /// `output[j] = Σ_{k=0}^{n-1} X_full[k] e^{+2 pi i jk/n}` from the half
    /// spectrum, where `X_full` extends `spectrum` by conjugate symmetry.
    ///
    /// The imaginary parts of `spectrum[0]` and `spectrum[n/2]` must be zero
    /// for the result to be exactly real; they are ignored.
    pub fn inverse(&self, spectrum: &[Complex64], output: &mut [f64], scratch: &mut [Complex64]) {
        let n = self.n;
        let m = n / 2;
        assert_eq!(spectrum.len(), m + 1, "spectrum length mismatch");
        assert_eq!(output.len(), n, "output length mismatch");
        assert!(scratch.len() >= self.scratch_len(), "scratch too small");
        let (h, fft_scratch) = scratch.split_at_mut(m);

        // H[k] = (X[k] + conj(X[m-k])) + i e^{+2 pi i k/n} (X[k] - conj(X[m-k]))
        // packs the even/odd inverse transforms into one half-length inverse.
        for k in 0..m {
            let xk = spectrum[k];
            let xmk = spectrum[m - k].conj();
            let sum = xk + xmk;
            let diff = xk - xmk;
            h[k] = sum + (self.tw[k].conj() * diff).mul_i();
        }
        self.half.inverse(h, fft_scratch);
        for j in 0..m {
            output[2 * j] = h[j].re;
            output[2 * j + 1] = h[j].im;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_forward_real;

    fn random_real(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    const SIZES: &[usize] = &[
        2, 4, 6, 8, 10, 12, 16, 20, 30, 32, 48, 64, 100, 128, 256, 400,
        // Half-lengths taking the Bluestein path.
        34, 38, 46, 194,
    ];

    #[test]
    fn forward_matches_naive_dft() {
        for &n in SIZES {
            let plan = RealFftPlan::new(n).unwrap();
            let x = random_real(n, n as u64);
            let want = dft_forward_real(&x);
            let mut got = vec![Complex64::ZERO; plan.spectrum_len()];
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.forward(&x, &mut got, &mut scratch);
            for k in 0..=n / 2 {
                assert!((got[k] - want[k]).abs() < 1e-11 * (n as f64).sqrt(), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn dc_and_nyquist_are_real() {
        for &n in SIZES {
            let plan = RealFftPlan::new(n).unwrap();
            let x = random_real(n, 3 * n as u64 + 1);
            let mut s = vec![Complex64::ZERO; plan.spectrum_len()];
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.forward(&x, &mut s, &mut scratch);
            assert!(s[0].im.abs() < 1e-12, "n={n}");
            assert!(s[n / 2].im.abs() < 1e-12, "n={n}");
            let sum: f64 = x.iter().sum();
            assert!((s[0].re - sum).abs() < 1e-11 * (n as f64).sqrt());
        }
    }

    #[test]
    fn roundtrip_scales_by_n() {
        for &n in SIZES {
            let plan = RealFftPlan::new(n).unwrap();
            let x = random_real(n, 99 + n as u64);
            let mut s = vec![Complex64::ZERO; plan.spectrum_len()];
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.forward(&x, &mut s, &mut scratch);
            let mut y = vec![0.0; n];
            plan.inverse(&s, &mut y, &mut scratch);
            for j in 0..n {
                assert!((y[j] / n as f64 - x[j]).abs() < 1e-12, "n={n} j={j}");
            }
        }
    }

    #[test]
    fn inverse_of_pure_mode_is_cosine() {
        let n = 16;
        let plan = RealFftPlan::new(n).unwrap();
        let mut s = vec![Complex64::ZERO; plan.spectrum_len()];
        s[3] = Complex64::new(1.0, 0.0);
        let mut y = vec![0.0; n];
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
        plan.inverse(&s, &mut y, &mut scratch);
        // X[3] = X[n-3]^* = 1 contributes 2 cos(2 pi 3 j / n).
        for j in 0..n {
            let want = 2.0 * (TAU * 3.0 * j as f64 / n as f64).cos();
            assert!((y[j] - want).abs() < 1e-12, "j={j}");
        }
    }

    #[test]
    fn rejects_odd_and_zero_lengths() {
        assert!(matches!(RealFftPlan::new(9).unwrap_err(), FftError::OddRealLength { n: 9 }));
        assert_eq!(RealFftPlan::new(0).unwrap_err(), FftError::ZeroLength);
    }
}
