//! The audit must pass on the workspace itself — this is the same check CI
//! runs via `cargo run -p xtask -- audit`, kept in the test suite so a
//! plain `cargo test --workspace` catches regressions too.

use std::path::PathBuf;

#[test]
fn workspace_audit_is_clean() {
    let root =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap().to_path_buf();
    let (nfiles, violations) = xtask::audit_workspace(&root).expect("walk workspace");
    assert!(nfiles > 100, "suspiciously few files scanned: {nfiles}");
    assert!(
        violations.is_empty(),
        "workspace audit found {} violations:\n{}",
        violations.len(),
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
