//! Property and fixture tests for the lexical layer (`clean_source`):
//! the blanked copy must preserve char count and line structure exactly —
//! every lint's line numbers and brace matching depend on it — and literal
//! contents must actually be blanked.

use proptest::prelude::*;
use xtask::clean_source;

/// Source-ish text: identifiers, punctuation, quotes, slashes, newlines,
/// and some multibyte chars so the char-count invariant is exercised off
/// the ASCII fast path.
fn sourceish() -> impl Strategy<Value = String> {
    let fragments: Vec<&'static str> = vec![
        "ident", "x1", "_y", "r", "br", "fn f", "let ", "\"", "'", "//", "/*", "*/", "r#\"", "\"#",
        "#", "\\", "\n", "{ }", "; ", "é∂",
    ];
    proptest::collection::vec(proptest::sample::select(fragments), 0..40)
        .prop_map(|parts| parts.concat())
}

proptest! {
    #[test]
    fn char_count_is_preserved(src in sourceish()) {
        let c = clean_source(&src);
        prop_assert_eq!(c.chars().count(), src.chars().count());
    }

    #[test]
    fn newlines_survive_at_their_char_positions(src in sourceish()) {
        let c = clean_source(&src);
        for (a, b) in src.chars().zip(c.chars()) {
            prop_assert_eq!(a == '\n', b == '\n');
        }
    }

    #[test]
    fn line_count_is_preserved(src in sourceish()) {
        let c = clean_source(&src);
        prop_assert_eq!(c.lines().count(), src.lines().count());
    }

    #[test]
    fn cleaning_is_idempotent(src in sourceish()) {
        let c = clean_source(&src);
        prop_assert_eq!(clean_source(&c), c);
    }
}

#[test]
fn string_and_comment_contents_are_blanked() {
    let src = "let v = \"vec![0; 9]\"; // vec![1]\nlet w = 1; /* unsafe */\n";
    let c = clean_source(src);
    assert!(!c.contains("vec!"), "literal/comment contents must be blanked: {c:?}");
    assert!(!c.contains("unsafe"));
    assert!(c.contains("let v ="), "code outside literals passes through");
    assert!(c.contains("let w = 1;"));
}

#[test]
fn raw_strings_with_hashes_end_at_matching_fence() {
    let src = "let a = r#\"one \" two\"#; let b = r##\"x \"# y\"##; let tail = 7;\n";
    let c = clean_source(src);
    assert_eq!(c.chars().count(), src.chars().count());
    assert!(!c.contains("one"), "raw string body blanked");
    assert!(!c.contains("two"));
    assert!(c.contains("let tail = 7;"), "scan resumes after the matching fence: {c:?}");
}

#[test]
fn byte_strings_and_raw_byte_strings_are_blanked() {
    let src = "let a = b\"unsafe\"; let b = br#\"vec![]\"#; let k = 3;\n";
    let c = clean_source(src);
    assert!(!c.contains("unsafe"));
    assert!(!c.contains("vec!"));
    assert!(c.contains("let k = 3;"), "{c:?}");
}

#[test]
fn char_literals_blank_but_lifetimes_survive() {
    let src = "fn f<'a>(x: &'a str) -> char { let q = '{'; let e = '\\''; 'x' }\n";
    let c = clean_source(src);
    assert_eq!(c.chars().count(), src.chars().count());
    // The literal `{` is blanked, so braces still balance 1:1 for f's body.
    assert_eq!(c.matches('{').count(), 1, "{c:?}");
    assert_eq!(c.matches('}').count(), 1);
    // Lifetime ticks are kept so generic signatures stay structural.
    assert!(c.contains("<'a>"));
    assert!(c.contains("&'a str"));
}

#[test]
fn nested_block_comments_close_at_depth_zero() {
    let src = "/* outer /* inner */ still comment */ fn live() {}\n";
    let c = clean_source(src);
    assert!(!c.contains("outer"));
    assert!(!c.contains("still"));
    assert!(c.contains("fn live()"), "code after the nested comment survives: {c:?}");
}

#[test]
fn identifier_ending_in_r_is_not_a_raw_string_prefix() {
    let src = "let var = other\"x\"; let r = 1;\n";
    // `other\"` — the `r` at the end of `other` must not start a raw string.
    let c = clean_source(src);
    assert!(c.contains("let var = other"), "{c:?}");
    assert!(c.contains("let r = 1;"));
}
