//! Negative fixture for nondeterministic-iteration (audited under a
//! deterministic-crate `src/` path): `HashMap` keying plus a `HashSet`
//! membership structure. Iterating either visits entries in per-process
//! random order — exactly the drift the bitwise contracts forbid.

use std::collections::{HashMap, HashSet};

pub struct Registry {
    plans: HashMap<u64, usize>,
    seen: HashSet<u64>,
}

impl Registry {
    pub fn total(&self) -> usize {
        // The trap: a "harmless" statistics fold in hash order.
        self.plans.values().sum()
    }

    pub fn known(&self, k: u64) -> bool {
        self.seen.contains(&k)
    }
}
