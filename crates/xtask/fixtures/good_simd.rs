//! Positive fixture: a well-formed SIMD kernel pair — the `#[target_feature]`
//! kernel is `unsafe`, named `*_avx2`, and its `*_scalar` fallback lives in
//! the same file.

fn axpy_scalar(y: &mut [f64], a: f64, x: &[f64]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Four-lane AVX2/FMA variant of [`axpy_scalar`].
///
/// # Safety
///
/// The caller must have verified (e.g. via `hibd_simd::avx2()`) that the
/// host CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn axpy_avx2(y: &mut [f64], a: f64, x: &[f64]) {
    use core::arch::x86_64::{_mm256_fmadd_pd, _mm256_loadu_pd, _mm256_set1_pd, _mm256_storeu_pd};
    let n4 = y.len().min(x.len()) & !3;
    let va = _mm256_set1_pd(a);
    let mut i = 0;
    while i < n4 {
        // SAFETY: `i + 3 < n4 <= min(y.len(), x.len())`, so the unaligned
        // 4-lane load and store stay inside both slices.
        unsafe {
            let vy = _mm256_loadu_pd(y.as_ptr().add(i));
            let vx = _mm256_loadu_pd(x.as_ptr().add(i));
            _mm256_storeu_pd(y.as_mut_ptr().add(i), _mm256_fmadd_pd(va, vx, vy));
        }
        i += 4;
    }
    for j in n4..y.len().min(x.len()) {
        y[j] = a.mul_add(x[j], y[j]);
    }
}

fn caller(y: &mut [f64], x: &[f64]) {
    // SAFETY: gated on runtime AVX2+FMA detection.
    if hibd_simd::avx2() { unsafe { axpy_avx2(y, 2.0, x) } } else { axpy_scalar(y, 2.0, x) }
}
