//! Negative fixture: a `#[hibd::hot]` function that allocates. The audit
//! must reject every construct below. Not compiled — scanned by the unit
//! tests in `src/lib.rs`.

use hibd_hot as hibd;

#[hibd::hot]
fn hot_and_leaky(n: usize) -> f64 {
    let v = vec![0.0f64; n];
    let w: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let b = Box::new(3.0f64);
    let copy = w.to_vec();
    v.iter().sum::<f64>() + copy.iter().sum::<f64>() + *b
}

fn cold_is_fine(n: usize) -> Vec<f64> {
    vec![0.0; n]
}
