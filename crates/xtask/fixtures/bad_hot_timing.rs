//! Negative fixture: raw wall-clock reads inside `#[hibd::hot]` bodies.
//! The sanctioned mechanism is a `hibd_telemetry` stopwatch.

use hibd_hot as hibd;
use std::time::Instant;

#[hibd::hot]
fn timed_kernel(x: &mut [f64]) -> f64 {
    let t0 = Instant::now();
    for v in x.iter_mut() {
        *v += 1.0;
    }
    t0.elapsed().as_secs_f64()
}

#[hibd::hot]
fn wall_clock_kernel(x: &mut [f64]) {
    let _now = std::time::SystemTime::now();
    x[0] += 1.0;
}
