//! Positive fixture: every unsafe site carries its justification.

struct RawView(*mut f64, usize);

// SAFETY: RawView is only shared between threads whose index sets are
// provably disjoint; see the schedule verifier.
unsafe impl Sync for RawView {}

fn read_first(v: &RawView) -> f64 {
    // SAFETY: construction guarantees the pointer targets a live buffer of
    // length >= 1.
    unsafe { *v.0 }
}

/// Reads without bounds checking.
///
/// # Safety
///
/// `i` must be in bounds for `xs`.
pub unsafe fn get_unchecked_at(xs: &[f64], i: usize) -> f64 {
    // SAFETY: the caller promises `i < xs.len()`.
    unsafe { *xs.get_unchecked(i) }
}
