//! Negative fixture: `mul_add` in scalar expression trees. Both sites must
//! be flagged by fma-discipline — fused rounding would silently break the
//! bitwise replica-vs-standalone and lane-vs-per-mesh contracts.

/// A "helpfully optimized" scalar butterfly: the FMA changes the bits.
fn combine2_scalar(re: &mut [f64], im: &mut [f64], wr: f64, wi: f64) {
    let tr = re[1].mul_add(wr, -(im[1] * wi));
    re[1] = re[0] - tr;
    re[0] += tr;
    im[0] += wi;
    im[1] = im[0];
    let _ = tr;
}

/// Free function outside any kernel pair.
pub fn horner(c: &[f64], x: f64) -> f64 {
    c.iter().rev().fold(0.0, |acc, &ci| acc.mul_add(x, ci))
}
