//! Positive fixture for global-state-serialization: both conventions in
//! use — a shared `Mutex` serializing a ScalarGuard toggle (directly and
//! through a locking helper), and `hibd_alloctrack::exclusive()` guarding a
//! telemetry window.

use std::sync::Mutex;

static SIMD_LOCK: Mutex<()> = Mutex::new(());

fn scalar_then_auto<R>(f: impl Fn() -> R) -> (R, R) {
    let _l = SIMD_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let scalar = {
        let _g = hibd_simd::ScalarGuard::new();
        f()
    };
    (scalar, f())
}

#[test]
fn equivalence_via_locking_helper() {
    let (a, b) = scalar_then_auto(compute);
    assert_eq!(a, b);
}

#[test]
fn direct_toggle_under_the_lock() {
    let _l = SIMD_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    hibd_simd::force_scalar(true);
    let scalar = compute();
    hibd_simd::force_scalar(false);
    assert_eq!(scalar, compute());
}

#[test]
fn telemetry_window_under_exclusive() {
    let _guard = hibd_alloctrack::exclusive();
    hibd_telemetry::reset();
    hibd_telemetry::enable();
    compute();
    let snap = hibd_telemetry::snapshot();
    hibd_telemetry::disable();
    assert!(snap.phase_count() > 0);
}

fn compute() -> f64 {
    1.0
}
