//! Positive fixture for the suppression grammar: every finding here is
//! covered by a justified `audit:allow`, so the full audit reports nothing.

fn spawn_helper() {
    // audit:allow(env-mutation): single-threaded setup helper runs before any thread is spawned
    std::env::set_var("CHILD_MARKER", "1");
    std::env::remove_var("CHILD_MARKER"); // audit:allow(env-mutation): immediately undone on the same single thread
}

fn blend(a: f64, b: f64, t: f64) -> f64 {
    // audit:allow(fma-discipline): result feeds a plot label, not a bitwise-compared trajectory
    t.mul_add(b - a, a)
}
