//! Positive fixture for nondeterministic-iteration: ordered containers in a
//! deterministic-crate `src/` path. `BTreeMap`/`BTreeSet` iterate in key
//! order, so statistics folds and eviction sweeps are reproducible.

use std::collections::{BTreeMap, BTreeSet};

pub struct Registry {
    plans: BTreeMap<u64, usize>,
    seen: BTreeSet<u64>,
}

impl Registry {
    pub fn total(&self) -> usize {
        self.plans.values().sum()
    }

    pub fn known(&self, k: u64) -> bool {
        self.seen.contains(&k)
    }
}
