//! Negative fixture for global-state-serialization (audited under a
//! `tests/` path): one test flips the process-global SIMD override and
//! another reads the process-global telemetry recorder, neither holding a
//! serialization lock. Run in parallel by libtest, these race.

#[test]
fn equivalence_without_lock() {
    let _g = hibd_simd::ScalarGuard::new();
    let scalar = compute();
    drop(_g);
    assert_eq!(scalar, compute());
}

#[test]
fn snapshot_without_lock() {
    hibd_telemetry::reset();
    hibd_telemetry::enable();
    compute();
    let snap = hibd_telemetry::snapshot();
    hibd_telemetry::disable();
    assert!(snap.phase_count() > 0);
}

fn compute() -> f64 {
    1.0
}
