//! Positive fixture for fma-discipline: `mul_add` confined to a `*_avx2`
//! kernel body (the scalar remainder loop of a vector kernel is part of the
//! audited kernel, with its own equivalence tests); the `*_scalar` twin
//! keeps the plain mul/add tree.

fn dot_scalar(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y) {
        acc += a * b;
    }
    acc
}

/// # Safety
///
/// The caller must have verified (e.g. via `hibd_simd::avx2()`) that the
/// host CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn dot_avx2(x: &[f64], y: &[f64]) -> f64 {
    use core::arch::x86_64::{_mm256_fmadd_pd, _mm256_loadu_pd, _mm256_setzero_pd};
    let n = x.len().min(y.len());
    let n4 = n & !3;
    let mut va = _mm256_setzero_pd();
    let mut i = 0;
    while i < n4 {
        // SAFETY: `i + 3 < n4 <= min(x.len(), y.len())`.
        unsafe {
            va = _mm256_fmadd_pd(
                _mm256_loadu_pd(x.as_ptr().add(i)),
                _mm256_loadu_pd(y.as_ptr().add(i)),
                va,
            );
        }
        i += 4;
    }
    let mut acc = 0.0;
    for j in n4..n {
        acc = x[j].mul_add(y[j], acc);
    }
    acc
}

fn caller(x: &[f64], y: &[f64]) -> f64 {
    // SAFETY: gated on runtime AVX2+FMA detection.
    if hibd_simd::avx2() { unsafe { dot_avx2(x, y) } } else { dot_scalar(x, y) }
}
