//! Positive fixture for env-mutation: reading the environment is fine
//! (dispatch reads `HIBD_SIMD` once at process start). Mentions of the
//! forbidden names in comments or strings must not trip the lint either:
//! set_var, remove_var.

fn simd_disabled() -> bool {
    // set_var would be the wrong way to force this; spawn with the
    // variable set instead.
    let doc = "never call set_var or remove_var from library code";
    let _ = doc;
    matches!(std::env::var("HIBD_SIMD").as_deref(), Ok("off" | "0" | "scalar"))
}

#[test]
fn reads_are_fine() {
    let _ = simd_disabled();
}
