//! Negative fixture for env-mutation: tests (or library code) writing the
//! process environment. `set_var`/`remove_var` race concurrent `getenv`
//! calls and leak configuration into every later test in the binary.

#[test]
fn forces_scalar_via_env() {
    std::env::set_var("HIBD_SIMD", "off");
    assert!(compute() > 0.0);
    std::env::remove_var("HIBD_SIMD");
}

fn compute() -> f64 {
    1.0
}
