//! Positive fixture: hot functions using only the sanctioned idioms —
//! slice arithmetic, stack arrays, and `resize` on caller-owned scratch.

use hibd_hot as hibd;

#[hibd::hot]
fn saxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[hibd::hot]
fn tile_reduce(x: &[f64]) -> f64 {
    let mut acc = [0.0f64; 8];
    for chunk in x.chunks(8) {
        for (a, v) in acc.iter_mut().zip(chunk) {
            *a += v;
        }
    }
    acc.iter().sum()
}

fn with_scratch(scratch: &mut Vec<f64>, n: usize) {
    // Grow-only reuse outside a hot fn, and allowed inside one too.
    scratch.resize(n, 0.0);
}

#[hibd::hot]
fn telemetry_timed_kernel(x: &mut [f64]) -> f64 {
    // The sanctioned hot-path timing mechanism: a telemetry stopwatch
    // (allocation-free, a single relaxed load when recording is off).
    let sw = hibd_telemetry::start(hibd_telemetry::Phase::RealSpace);
    for v in x.iter_mut() {
        *v *= 2.0;
    }
    hibd_telemetry::incr(hibd_telemetry::Counter::NeighborRebuilds, 1);
    sw.stop()
}
