//! Negative fixture: undocumented unsafe. Not compiled — scanned by the
//! unit tests.

struct RawView(*mut f64, usize);

unsafe impl Sync for RawView {}

fn read_first(v: &RawView) -> f64 {
    unsafe { *v.0 }
}

/// Reads without bounds checking.
pub unsafe fn get_unchecked_at(xs: &[f64], i: usize) -> f64 {
    unsafe { *xs.get_unchecked(i) }
}
