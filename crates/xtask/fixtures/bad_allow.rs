//! Negative fixture for the suppression grammar: an `audit:allow` with no
//! justification is itself a violation and does NOT silence the finding
//! underneath it; an unknown lint name is flagged too.

fn spawn_helper() {
    // audit:allow(env-mutation)
    std::env::set_var("CHILD_MARKER", "1");
}

fn other() {
    // audit:allow(hot-allocs): typo'd lint name
    let _ = 1 + 1;
}
