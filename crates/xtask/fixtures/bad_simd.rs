//! Negative fixture for the simd-dispatch lint: a safe `#[target_feature]`
//! fn, a kernel without the `_avx2` naming convention, and a kernel whose
//! scalar fallback is missing from the file.

fn sum_scalar(x: &[f64]) -> f64 {
    x.iter().sum()
}

// Violation: #[target_feature] fn must be `unsafe`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn sum_avx2(x: &[f64]) -> f64 {
    sum_scalar(x)
}

// Violation: name must end `_avx2`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sum_fast(x: &[f64]) -> f64 {
    sum_scalar(x)
}

// Violation: no `dot_scalar` fallback exists in this file.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_avx2(x: &[f64], y: &[f64]) -> f64 {
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}
