//! **env-mutation**: `std::env::set_var`/`remove_var` are forbidden.
//!
//! The process environment is global, unsynchronized state — mutating it
//! from a test or a library races every concurrent `getenv` (UB on glibc,
//! and `set_var` is `unsafe` on recent toolchains for exactly that reason)
//! and leaks configuration across tests in the same binary. The `HIBD_SIMD`
//! kill switch is read once at process start by `hibd-simd`; code that
//! needs to exercise both kernel paths in one process uses
//! `hibd_simd::ScalarGuard` (an atomic override, not an env write). The
//! `hibd-simd` crate itself is the only sanctioned home for env-based
//! dispatch plumbing.

use super::source::{find_word, line_of, SourceFile};
use super::Violation;

/// The one file allowed to own env-based dispatch plumbing.
const SANCTIONED: &str = "crates/simd/src/lib.rs";

pub fn run(sf: &SourceFile, out: &mut Vec<Violation>) {
    if sf.path == SANCTIONED {
        return;
    }
    for word in ["set_var", "remove_var"] {
        for pos in find_word(&sf.cleaned, word) {
            out.push(Violation {
                file: sf.path.clone(),
                line: line_of(&sf.cleaned, pos),
                lint: "env-mutation",
                msg: format!(
                    "`{word}` mutates process-global env (racy; leaks across tests); \
                     use hibd_simd::ScalarGuard or set the variable at spawn time"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::source::SourceFile;

    fn audit(path: &str, src: &str) -> Vec<super::Violation> {
        let mut out = Vec::new();
        super::run(&SourceFile::parse(path, src), &mut out);
        out
    }

    #[test]
    fn set_var_is_rejected_anywhere() {
        let src = include_str!("../../fixtures/bad_env.rs");
        let v = audit("crates/cli/src/main.rs", src);
        assert!(v.iter().any(|x| x.lint == "env-mutation" && x.msg.contains("set_var")));
        assert!(v.iter().any(|x| x.msg.contains("remove_var")), "remove_var not flagged: {v:?}");
    }

    #[test]
    fn env_reads_pass() {
        let src = include_str!("../../fixtures/good_env.rs");
        let v = audit("crates/cli/src/main.rs", src);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn the_simd_dispatch_crate_is_sanctioned() {
        let src = "fn f() { std::env::set_var(\"HIBD_SIMD\", \"off\"); }\n";
        assert!(audit("crates/simd/src/lib.rs", src).is_empty());
        assert_eq!(audit("crates/simd/src/other.rs", src).len(), 1);
    }

    #[test]
    fn mentions_in_comments_and_strings_pass() {
        let src = "// set_var would be wrong\nfn f() { let _ = \"set_var\"; }\n";
        assert!(audit("x.rs", src).is_empty());
    }
}
