//! **fma-discipline**: `mul_add` is permitted only inside `*_avx2` kernels.
//!
//! Every bitwise-reproducibility contract in the workspace (ensemble
//! replica vs standalone run, lane-batched FFT vs per-mesh FFT, SIMD pair
//! batches vs scalar loops) rests on the scalar expression trees using
//! plain `mul`/`add`/`sub` with IEEE rounding at every step. A single
//! `mul_add` in a scalar tree contracts two roundings into one and silently
//! changes the bits — the same way the paper's Section IV kernels lose
//! accuracy when their summation order drifts. Hardware-FMA intrinsics are
//! confined to `*_avx2` kernels (including `combine4_avx2`, the sanctioned
//! lane mirror of `combine_avx2`'s FMA tree), where the scalar twin and the
//! equivalence/bitwise tests define the contract explicitly; `mul_add` in
//! their scalar tail loops is part of that same audited kernel body.

use super::source::{find_word, line_of, SourceFile};
use super::Violation;

pub fn run(sf: &SourceFile, out: &mut Vec<Violation>) {
    for pos in find_word(&sf.cleaned, "mul_add") {
        let sanctioned = sf.enclosing_fn(pos).is_some_and(|f| f.name.ends_with("_avx2"));
        if sanctioned {
            continue;
        }
        out.push(Violation {
            file: sf.path.clone(),
            line: line_of(&sf.cleaned, pos),
            lint: "fma-discipline",
            msg: "`mul_add` outside a `*_avx2` kernel: fused rounding breaks the \
                  scalar bitwise contracts (write the plain mul/add tree instead)"
                .to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::super::source::SourceFile;

    fn audit(path: &str, src: &str) -> Vec<super::Violation> {
        let mut out = Vec::new();
        super::run(&SourceFile::parse(path, src), &mut out);
        out
    }

    #[test]
    fn mul_add_in_scalar_fn_is_rejected() {
        let src = include_str!("../../fixtures/bad_fma.rs");
        let v = audit("bad_fma.rs", src);
        assert_eq!(v.len(), 2, "both scalar mul_adds flagged: {v:?}");
        assert!(v.iter().all(|x| x.lint == "fma-discipline"));
    }

    #[test]
    fn mul_add_in_avx2_kernel_passes() {
        let src = include_str!("../../fixtures/good_fma.rs");
        let v = audit("good_fma.rs", src);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn deliberate_mul_add_in_a_scalar_fft_lane_kernel_fails() {
        // The acceptance-criterion scenario: someone "optimizes" a lane
        // helper with mul_add. The audit must fail.
        let src = "fn mul4_scalar(a: [f64; 4], b: [f64; 4], c: [f64; 4]) -> [f64; 4] {\n\
                   \x20   let mut o = [0.0; 4];\n\
                   \x20   for l in 0..4 { o[l] = a[l].mul_add(b[l], c[l]); }\n\
                   \x20   o\n}\n";
        let v = audit("crates/fft/src/lanes.rs", src);
        assert_eq!(v.len(), 1, "got {v:?}");
        assert_eq!(v[0].lint, "fma-discipline");
    }

    #[test]
    fn mul_add_in_comment_or_string_not_flagged() {
        let src = "// mul_add would be wrong here\nfn f() { let _ = \"mul_add\"; }\n";
        assert!(audit("x.rs", src).is_empty());
    }
}
