//! The lint registry and the suppression grammar.
//!
//! Every lint is a pure function over a parsed [`SourceFile`]; the registry
//! ([`LINTS`]) is the single list the audit driver, the `--json` output,
//! and the suppression validator all read. Adding a lint means adding a
//! module, one [`Lint`] entry, and a positive + negative fixture under
//! `crates/xtask/fixtures/`.
//!
//! # Suppressions
//!
//! A finding can be silenced only by a *justified* allow comment on the
//! flagged line or the line directly above it:
//!
//! ```text
//! // audit:allow(<lint-name>): <non-empty reason>
//! ```
//!
//! An allow naming an unknown lint, or missing the reason, is itself a
//! violation (`audit-allow`) — the grammar makes "why is this exempt?"
//! reviewable instead of tribal.

pub mod env_mutation;
pub mod fma;
pub mod global_state;
pub mod hot;
pub mod iteration;
pub mod simd_dispatch;
pub mod source;
pub mod unsafety;

use source::SourceFile;
use std::fmt;

/// One audit finding.
#[derive(Clone, Debug)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub lint: &'static str,
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.lint, self.msg)
    }
}

/// A registered lint: a stable name (the `audit:allow` key), a one-line
/// description, and the pass itself.
pub struct Lint {
    pub name: &'static str,
    pub desc: &'static str,
    pub run: fn(&SourceFile, &mut Vec<Violation>),
}

/// The nine workspace lints, in reporting order.
pub const LINTS: &[Lint] = &[
    Lint {
        name: "hot-alloc",
        desc: "#[hibd::hot] bodies must not contain heap-allocating constructs",
        run: hot::run_alloc,
    },
    Lint {
        name: "hot-timing",
        desc: "#[hibd::hot] bodies must use hibd_telemetry stopwatches, not raw clocks",
        run: hot::run_timing,
    },
    Lint {
        name: "safety-comment",
        desc: "unsafe blocks/impls/traits need a preceding // SAFETY: comment",
        run: unsafety::run_comment,
    },
    Lint {
        name: "safety-doc",
        desc: "pub unsafe fn needs a `# Safety` rustdoc section",
        run: unsafety::run_doc,
    },
    Lint {
        name: "simd-dispatch",
        desc: "#[target_feature] kernels: unsafe, *_avx2-named, *_scalar twin in-file",
        run: simd_dispatch::run,
    },
    Lint {
        name: "fma-discipline",
        desc: "mul_add only inside *_avx2 kernels; scalar trees stay FMA-free",
        run: fma::run,
    },
    Lint {
        name: "nondeterministic-iteration",
        desc: "no HashMap/HashSet in non-test code of the deterministic crates",
        run: iteration::run,
    },
    Lint {
        name: "global-state-serialization",
        desc: "tests touching process-global toggles must hold a serialization lock",
        run: global_state::run,
    },
    Lint {
        name: "env-mutation",
        desc: "std::env::set_var/remove_var are process-global; forbidden",
        run: env_mutation::run,
    },
];

/// The marker every suppression comment carries.
const ALLOW_MARKER: &str = "audit:allow(";

/// Meta-lint name for malformed suppressions (not registered, so it cannot
/// itself be suppressed).
const ALLOW_LINT: &str = "audit-allow";

/// Parses the file's `audit:allow` comments. Returns the set of suppressed
/// `(lint, line)` pairs (an allow covers its own line and the next one, so
/// both trailing and line-above placement work) plus violations for
/// malformed allows. Only plain `//` comments count: an allow quoted in a
/// string literal or shown in a doc comment is not a suppression.
fn parse_allows(sf: &SourceFile) -> (Vec<(String, usize)>, Vec<Violation>) {
    let mut allowed = Vec::new();
    let mut bad = Vec::new();
    for (lineno, comment) in source::line_comments(&sf.src) {
        let Some(open) = comment.find(ALLOW_MARKER) else { continue };
        let rest = &comment[open + ALLOW_MARKER.len()..];
        let Some(close) = rest.find(')') else {
            bad.push(Violation {
                file: sf.path.clone(),
                line: lineno,
                lint: ALLOW_LINT,
                msg: "malformed audit:allow — missing closing `)`".to_string(),
            });
            continue;
        };
        let name = rest[..close].trim();
        if !LINTS.iter().any(|l| l.name == name) {
            bad.push(Violation {
                file: sf.path.clone(),
                line: lineno,
                lint: ALLOW_LINT,
                msg: format!("audit:allow names unknown lint `{name}`"),
            });
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            bad.push(Violation {
                file: sf.path.clone(),
                line: lineno,
                lint: ALLOW_LINT,
                msg: format!(
                    "audit:allow({name}) requires a justification: \
                     `// audit:allow({name}): <reason>`"
                ),
            });
            continue;
        }
        allowed.push((name.to_string(), lineno));
        allowed.push((name.to_string(), lineno + 1));
    }
    (allowed, bad)
}

/// Runs every registered lint over one parsed file, applies suppressions,
/// and appends malformed-suppression findings.
pub fn run_all(sf: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for lint in LINTS {
        (lint.run)(sf, &mut out);
    }
    let (allowed, bad) = parse_allows(sf);
    out.retain(|v| !allowed.iter().any(|(l, line)| l == v.lint && *line == v.line));
    out.extend(bad);
    out.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<&str> = LINTS.iter().map(|l| l.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert_eq!(before, 9);
    }

    #[test]
    fn justified_allow_suppresses_one_finding() {
        let src = "// audit:allow(env-mutation): fixture exercises the grammar\n\
                   fn f() { std::env::set_var(\"X\", \"1\"); }\n";
        let v = run_all(&SourceFile::parse("x.rs", src));
        assert!(v.is_empty(), "allow should suppress: {v:?}");
    }

    #[test]
    fn trailing_allow_suppresses_same_line() {
        let src =
            "fn f() { std::env::set_var(\"X\", \"1\"); } // audit:allow(env-mutation): test-only\n";
        let v = run_all(&SourceFile::parse("x.rs", src));
        assert!(v.is_empty(), "trailing allow should suppress: {v:?}");
    }

    #[test]
    fn allow_without_reason_is_flagged() {
        let src = "// audit:allow(env-mutation)\nfn f() { std::env::set_var(\"X\", \"1\"); }\n";
        let v = run_all(&SourceFile::parse("x.rs", src));
        assert!(v.iter().any(|x| x.lint == "audit-allow" && x.msg.contains("justification")));
        // The unjustified allow does NOT suppress the underlying finding.
        assert!(v.iter().any(|x| x.lint == "env-mutation"), "finding must survive: {v:?}");
    }

    #[test]
    fn allow_with_unknown_lint_is_flagged() {
        let src = "// audit:allow(no-such-lint): because\nfn f() {}\n";
        let v = run_all(&SourceFile::parse("x.rs", src));
        assert!(v.iter().any(|x| x.lint == "audit-allow" && x.msg.contains("no-such-lint")));
    }

    #[test]
    fn allow_does_not_leak_to_other_lines() {
        let src = "// audit:allow(env-mutation): only covers the next line\n\
                   fn ok() {}\n\
                   fn f() { std::env::set_var(\"X\", \"1\"); }\n";
        let v = run_all(&SourceFile::parse("x.rs", src));
        assert!(v.iter().any(|x| x.lint == "env-mutation"), "line 3 not covered: {v:?}");
    }
}
