//! **safety-comment** and **safety-doc**: every `unsafe` block / `unsafe
//! impl` / `unsafe trait` must be immediately preceded by a `// SAFETY:`
//! comment, and every `pub unsafe fn` must carry a `# Safety` rustdoc
//! section. These two lints are the only ones that consult the *original*
//! source lines (comments are blanked in the cleaned copy).

use super::source::{find_word, is_ident_byte, line_of, next_token, SourceFile};
use super::Violation;

/// Does any `//` comment line directly above `line` (1-based) mention
/// `SAFETY`? The comment block must touch the statement: the first
/// non-comment line above it ends the search.
fn preceded_by_safety_comment(lines: &[&str], line: usize) -> bool {
    let mut i = line - 1; // index of the line holding the `unsafe` token
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if t.starts_with("//") {
            if t.contains("SAFETY") {
                return true;
            }
        } else {
            return false;
        }
    }
    false
}

/// Do the doc comments above `line` (1-based, attributes allowed in
/// between) contain a `# Safety` section?
fn doc_has_safety_section(lines: &[&str], line: usize) -> bool {
    let mut i = line - 1;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if t.starts_with("///") || t.starts_with("//!") {
            if t.contains("# Safety") {
                return true;
            }
        } else if t.starts_with("#[") || t.starts_with("#![") || t.starts_with("//") {
            // Attributes and plain comments may sit between docs and item.
        } else {
            return false;
        }
    }
    false
}

/// The safety-comment pass: `// SAFETY:` before unsafe blocks/impls/traits.
pub fn run_comment(sf: &SourceFile, out: &mut Vec<Violation>) {
    let lines: Vec<&str> = sf.src.lines().collect();
    for pos in find_word(&sf.cleaned, "unsafe") {
        let Some((tok, _)) = next_token(&sf.cleaned, pos + "unsafe".len()) else {
            continue;
        };
        let line = line_of(&sf.cleaned, pos);
        match tok {
            "{" if !preceded_by_safety_comment(&lines, line) => {
                out.push(Violation {
                    file: sf.path.clone(),
                    line,
                    lint: "safety-comment",
                    msg: "unsafe block without a preceding // SAFETY: comment".to_string(),
                });
            }
            "impl" | "trait" if !preceded_by_safety_comment(&lines, line) => {
                out.push(Violation {
                    file: sf.path.clone(),
                    line,
                    lint: "safety-comment",
                    msg: format!("unsafe {tok} without a preceding // SAFETY: comment"),
                });
            }
            _ => {}
        }
    }
}

/// The safety-doc pass: `# Safety` docs on `pub unsafe fn`.
pub fn run_doc(sf: &SourceFile, out: &mut Vec<Violation>) {
    let lines: Vec<&str> = sf.src.lines().collect();
    for pos in find_word(&sf.cleaned, "unsafe") {
        let Some((tok, _)) = next_token(&sf.cleaned, pos + "unsafe".len()) else {
            continue;
        };
        if tok != "fn" && tok != "extern" {
            continue;
        }
        // `pub [const] unsafe fn` needs a `# Safety` doc section.
        let line = line_of(&sf.cleaned, pos);
        let head_start = sf.cleaned[..pos].rfind('\n').map_or(0, |q| q + 1);
        let head = &sf.cleaned[head_start..pos];
        let is_pub = !find_word(head, "pub").is_empty();
        if is_pub && !doc_has_safety_section(&lines, line) {
            out.push(Violation {
                file: sf.path.clone(),
                line,
                lint: "safety-doc",
                msg: "pub unsafe fn without a `# Safety` doc section".to_string(),
            });
        }
    }
}

// Shared with simd_dispatch: is there a `fn` item named exactly `name`
// anywhere in the cleaned file?
pub(super) fn has_fn_named(cleaned: &str, name: &str) -> bool {
    find_word(cleaned, name).into_iter().any(|pos| {
        let head = cleaned[..pos].trim_end();
        head.ends_with("fn") && (head.len() < 3 || !is_ident_byte(head.as_bytes()[head.len() - 3]))
    })
}
