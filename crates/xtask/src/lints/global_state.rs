//! **global-state-serialization**: a test that touches process-global
//! toggles must hold a serialization lock while it does.
//!
//! Two pieces of state are process-global by design: the `hibd_simd` scalar
//! override (`ScalarGuard`/`force_scalar`) and the `hibd_telemetry`
//! recorder (`enable`/`disable`/`reset`/`snapshot`/`trace`). Two tests in
//! one binary run on different threads; if one forces the scalar path while
//! the other asserts bitwise SIMD equivalence — or one resets the recorder
//! mid-snapshot — the failure is a nondeterministic CI flake that no local
//! rerun reproduces. The convention (previously comment-only, in
//! `crates/telemetry/src/lib.rs`) is machine-checked here: any function in
//! test code whose body touches one of the toggles must also acquire a
//! serialization guard in that same body — a `Mutex` `.lock()` or
//! `hibd_alloctrack::exclusive()` (itself a process-wide test mutex).
//! Helpers count: a tests-file helper that wraps the toggle and the lock
//! together (like `scalar_then_auto`) satisfies the lint, and its callers
//! don't trigger it.

use super::source::{find_word, line_of, next_token, SourceFile};
use super::Violation;

/// Global-telemetry entry points that mutate or read the process-global
/// recorder.
const TELEMETRY_CALLS: &[&str] = &["enable", "disable", "reset", "snapshot", "trace"];

/// Is the word at `pos` (already boundary-matched) a call — followed by
/// `(` after optional whitespace?
fn is_call(body: &str, pos: usize, word: &str) -> bool {
    matches!(next_token(body, pos + word.len()), Some(("(", _)))
}

/// Is the word at `pos` path-qualified as `telemetry::X` or
/// `hibd_telemetry::X`?
fn telemetry_qualified(body: &str, pos: usize) -> bool {
    let head = &body[..pos];
    let Some(prefix) = head.strip_suffix("::") else { return false };
    prefix.ends_with("telemetry") || prefix.ends_with("hibd_telemetry")
}

/// Is the word at `pos` a bare (unqualified, non-method) call? Used inside
/// the telemetry crate itself, where tests import the API directly.
fn bare_call(body: &str, pos: usize) -> bool {
    let head = body[..pos].trim_end();
    !head.ends_with('.') && !head.ends_with(':')
}

/// First global-state trigger in `body`, as (what, byte offset).
fn find_trigger(body: &str, in_telemetry_crate: bool) -> Option<(String, usize)> {
    let mut best: Option<(String, usize)> = None;
    let mut consider = |what: String, pos: usize| {
        if best.as_ref().is_none_or(|(_, b)| pos < *b) {
            best = Some((what, pos));
        }
    };
    for pos in find_word(body, "ScalarGuard") {
        consider("hibd_simd::ScalarGuard".to_string(), pos);
    }
    for pos in find_word(body, "force_scalar") {
        consider("hibd_simd::force_scalar".to_string(), pos);
    }
    for call in TELEMETRY_CALLS {
        for pos in find_word(body, call) {
            if !is_call(body, pos, call) {
                continue;
            }
            if telemetry_qualified(body, pos) || (in_telemetry_crate && bare_call(body, pos)) {
                consider(format!("hibd_telemetry::{call}"), pos);
            }
        }
    }
    best
}

/// Does `body` acquire a serialization guard? Accepted forms: any
/// `.lock(...)` call (shared `Mutex` convention) or `exclusive()` (the
/// alloctrack process-wide test mutex).
fn holds_serialization(body: &str) -> bool {
    if body.contains(".lock(") {
        return true;
    }
    find_word(body, "exclusive").iter().any(|&pos| is_call(body, pos, "exclusive"))
}

pub fn run(sf: &SourceFile, out: &mut Vec<Violation>) {
    let in_telemetry_crate = sf.path.starts_with("crates/telemetry/");
    for f in sf.fns() {
        let Some(body_range) = f.body.clone() else { continue };
        if !sf.is_test_code(body_range.start) {
            continue;
        }
        // Only the innermost fn owns its text: exclude nested fn bodies so
        // a trigger inside a nested helper isn't charged to the parent.
        let body = &sf.cleaned[body_range.clone()];
        let Some((what, rel)) = find_trigger(body, in_telemetry_crate) else { continue };
        if sf.enclosing_fn(body_range.start + rel).is_some_and(|inner| inner.fn_pos != f.fn_pos) {
            continue;
        }
        if holds_serialization(body) {
            continue;
        }
        out.push(Violation {
            file: sf.path.clone(),
            line: line_of(&sf.cleaned, body_range.start + rel),
            lint: "global-state-serialization",
            msg: format!(
                "test code touches process-global state ({what}) without \
                 serializing: hold a shared Mutex `.lock()` or \
                 hibd_alloctrack::exclusive() for the toggle's lifetime"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::super::source::SourceFile;

    fn audit(path: &str, src: &str) -> Vec<super::Violation> {
        let mut out = Vec::new();
        super::run(&SourceFile::parse(path, src), &mut out);
        out
    }

    #[test]
    fn unserialized_scalar_guard_test_is_rejected() {
        let src = include_str!("../../fixtures/bad_global_state.rs");
        let v = audit("crates/fft/tests/bad_global_state.rs", src);
        assert!(
            v.iter()
                .any(|x| x.lint == "global-state-serialization" && x.msg.contains("ScalarGuard")),
            "unserialized ScalarGuard not flagged: {v:?}"
        );
        // The lint reports the earliest trigger per fn; in the fixture the
        // telemetry test hits `reset()` first.
        assert!(
            v.iter().any(|x| x.msg.contains("hibd_telemetry::reset")),
            "unserialized telemetry use not flagged: {v:?}"
        );
    }

    #[test]
    fn locked_tests_pass() {
        let src = include_str!("../../fixtures/good_global_state.rs");
        let v = audit("crates/fft/tests/good_global_state.rs", src);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn non_test_code_is_out_of_scope() {
        // Bench binaries and production drivers toggle freely (one thread,
        // whole-process intent).
        let src = "fn main() { let _g = hibd_simd::ScalarGuard::new(); }\n";
        assert!(audit("crates/bench/src/bin/bench_pr6.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_module_in_src_is_in_scope() {
        let src = "pub fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _g = super::ScalarGuard::new(); }\n}\n";
        let v = audit("crates/simd/src/lib.rs", src);
        assert_eq!(v.len(), 1, "got {v:?}");
    }

    #[test]
    fn bare_telemetry_calls_only_count_inside_the_telemetry_crate() {
        let src = "#[test]\nfn t() { enable(); }\n";
        assert!(audit("crates/cells/tests/x.rs", src).is_empty(), "bare call elsewhere");
        let v = audit("crates/telemetry/tests/x.rs", src);
        assert_eq!(v.len(), 1, "bare call in-crate must trigger: {v:?}");
    }

    #[test]
    fn qualified_snapshot_without_parens_is_not_a_call() {
        // Field access like `s.snapshot.phase(..)` must not trigger.
        let src = "#[test]\nfn t(s: &JobSnapshot) { assert!(s.snapshot.phase(0).count > 0); }\n";
        assert!(audit("crates/engine/tests/x.rs", src).is_empty());
    }

    #[test]
    fn exclusive_guard_counts_as_serialization() {
        let src = "#[test]\nfn t() {\n    let _guard = exclusive();\n    hibd_telemetry::reset();\n    hibd_telemetry::enable();\n}\n";
        assert!(audit("crates/telemetry/tests/alloc.rs", src).is_empty());
    }

    #[test]
    fn locking_helper_absolves_its_callers() {
        // The scalar_then_auto pattern: the helper locks and toggles; the
        // #[test] callers never mention the toggle.
        let src = "fn scalar_then_auto() {\n    let _l = LOCK.lock().unwrap();\n    let _g = hibd_simd::ScalarGuard::new();\n}\n#[test]\nfn t() { scalar_then_auto(); }\n";
        assert!(audit("crates/fft/tests/x.rs", src).is_empty());
    }
}
