//! **nondeterministic-iteration**: no `HashMap`/`HashSet` in non-test code
//! of the deterministic crates.
//!
//! `std::collections::HashMap` randomizes its hasher per process, so any
//! iteration over it (values, keys, drain, rayon bridges) visits entries in
//! a run-dependent order. In the crates that carry a bitwise-reproducibility
//! contract that is a trap with a delay: the map works fine until someone
//! iterates it to sum statistics, evict plans, or batch work — and then
//! run-to-run drift appears far from the map itself. The deterministic
//! crates therefore use `BTreeMap`/`BTreeSet` (deterministic order, and the
//! shape keys already have total orders) or sort before iterating; a
//! genuinely iteration-free map can be kept with an
//! `audit:allow(nondeterministic-iteration)` stating that invariant.

use super::source::{find_word, line_of, SourceFile};
use super::Violation;

/// Crates whose outputs are compared bitwise (ensemble replicas, lane
/// batches, checkpoint resume). Only their `src/` trees are scoped — tests
/// and benches may hash freely.
const DETERMINISTIC_CRATES: &[&str] = &["fft", "pme", "rpy", "treecode", "engine", "core"];

fn in_scope(path: &str) -> bool {
    let Some(rest) = path.strip_prefix("crates/") else { return false };
    let Some((krate, tail)) = rest.split_once('/') else { return false };
    DETERMINISTIC_CRATES.contains(&krate) && tail.starts_with("src/")
}

pub fn run(sf: &SourceFile, out: &mut Vec<Violation>) {
    if !in_scope(&sf.path) {
        return;
    }
    for ty in ["HashMap", "HashSet"] {
        for pos in find_word(&sf.cleaned, ty) {
            if sf.in_cfg_test(pos) {
                continue;
            }
            out.push(Violation {
                file: sf.path.clone(),
                line: line_of(&sf.cleaned, pos),
                lint: "nondeterministic-iteration",
                msg: format!(
                    "`{ty}` in a deterministic crate: iteration order is \
                     per-process random; use BTree{} or sort before iterating",
                    &ty[4..]
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::source::SourceFile;

    fn audit(path: &str, src: &str) -> Vec<super::Violation> {
        let mut out = Vec::new();
        super::run(&SourceFile::parse(path, src), &mut out);
        out
    }

    #[test]
    fn hashmap_in_deterministic_crate_src_is_rejected() {
        let src = include_str!("../../fixtures/bad_iteration.rs");
        let v = audit("crates/engine/src/cache.rs", src);
        assert!(
            v.iter().any(|x| x.lint == "nondeterministic-iteration" && x.msg.contains("HashMap")),
            "HashMap not flagged: {v:?}"
        );
        assert!(v.iter().any(|x| x.msg.contains("HashSet")), "HashSet not flagged: {v:?}");
    }

    #[test]
    fn btreemap_in_deterministic_crate_passes() {
        let src = include_str!("../../fixtures/good_iteration.rs");
        let v = audit("crates/engine/src/cache.rs", src);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn hashmap_outside_the_deterministic_crates_is_fine() {
        let src = include_str!("../../fixtures/bad_iteration.rs");
        assert!(audit("crates/cli/src/config.rs", src).is_empty());
        assert!(audit("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn hashmap_in_cfg_test_module_is_fine() {
        let src = "pub fn prod() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() { let _m: HashMap<u32, u32> = HashMap::new(); }\n}\n";
        assert!(audit("crates/fft/src/plan.rs", src).is_empty());
    }

    #[test]
    fn integration_tests_of_deterministic_crates_are_fine() {
        let src =
            "use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> { HashMap::new() }\n";
        assert!(audit("crates/pme/tests/helpers.rs", src).is_empty());
    }
}
