//! **simd-dispatch**: SIMD dispatch hygiene. A `#[target_feature(...)]`
//! kernel is only sound to call when the host supports the requested
//! instruction set, so it must be `unsafe fn` (forcing every call through
//! an `unsafe` block the safety-comment lint covers), its name must end
//! `_avx2` to advertise the requirement, and a `_scalar` sibling with the
//! same stem must live in the same file so dispatch always has a portable
//! fallback.

use super::source::{find_word, line_of, next_token, SourceFile};
use super::unsafety::has_fn_named;
use super::Violation;

pub fn run(sf: &SourceFile, out: &mut Vec<Violation>) {
    let cleaned = &sf.cleaned;
    for pos in find_word(cleaned, "target_feature") {
        // Only the attribute form `#[target_feature(...)]`; a bare mention
        // (e.g. `cfg(target_feature = ...)`) is not a kernel definition.
        if !cleaned[..pos].trim_end().ends_with('[') {
            continue;
        }
        let line = line_of(cleaned, pos);
        let after = pos + "target_feature".len();
        let Some(fn_rel) = find_word(&cleaned[after..], "fn").first().copied() else {
            out.push(Violation {
                file: sf.path.clone(),
                line,
                lint: "simd-dispatch",
                msg: "#[target_feature] not followed by a function".to_string(),
            });
            continue;
        };
        let fn_pos = after + fn_rel;
        if find_word(&cleaned[after..fn_pos], "unsafe").is_empty() {
            out.push(Violation {
                file: sf.path.clone(),
                line,
                lint: "simd-dispatch",
                msg: "#[target_feature] fn must be `unsafe` (call sites carry the \
                      // SAFETY: cpu-feature contract)"
                    .to_string(),
            });
        }
        let Some((name, _)) = next_token(cleaned, fn_pos + "fn".len()) else {
            continue;
        };
        if let Some(stem) = name.strip_suffix("_avx2") {
            let fallback = format!("{stem}_scalar");
            if !has_fn_named(cleaned, &fallback) {
                out.push(Violation {
                    file: sf.path.clone(),
                    line,
                    lint: "simd-dispatch",
                    msg: format!(
                        "#[target_feature] fn `{name}` has no scalar fallback \
                         `fn {fallback}` in this file"
                    ),
                });
            }
        } else {
            out.push(Violation {
                file: sf.path.clone(),
                line,
                lint: "simd-dispatch",
                msg: format!(
                    "#[target_feature] fn `{name}` must be named `*_avx2` after the \
                     instruction set it requires"
                ),
            });
        }
    }
}
