//! **hot-alloc** and **hot-timing**: a function marked `#[hibd::hot]` must
//! not contain heap-allocating constructs or raw wall-clock reads.
//!
//! `Vec::resize` on long-lived scratch is the sanctioned grow-only idiom
//! and is allowed. The sanctioned timing mechanism is `hibd_telemetry`
//! (`start`/`span`/`timed`, `incr`, `gauge_max`): those calls are
//! allocation-free, compile to a single relaxed load when recording is
//! disabled, and feed the global phase recorder — so they are whitelisted
//! by construction (the lint only matches the raw clock constructs).

use super::source::{find_word, is_ident_byte, line_of, SourceFile};
use super::Violation;

/// Heap-allocating constructs forbidden inside `#[hibd::hot]` bodies. Each
/// entry is (pattern, must start at an identifier boundary, description).
const FORBIDDEN_ALLOC: &[(&str, bool, &str)] = &[
    ("vec!", true, "allocating macro `vec!`"),
    ("format!", true, "allocating macro `format!`"),
    ("Vec::new", true, "fresh `Vec::new` (reuse resize-grown scratch instead)"),
    ("Vec::with_capacity", true, "fresh `Vec::with_capacity`"),
    ("Vec::from", true, "fresh `Vec::from`"),
    ("Box::new", true, "heap `Box::new`"),
    ("String::new", true, "fresh `String::new`"),
    ("String::from", true, "fresh `String::from`"),
    (".to_vec", false, "allocating `.to_vec()`"),
    (".to_owned", false, "allocating `.to_owned()`"),
    (".to_string", false, "allocating `.to_string()`"),
    (".collect", false, "allocating `.collect()`"),
];

/// Raw wall-clock constructs forbidden inside `#[hibd::hot]` bodies; time
/// hot code with the `hibd_telemetry` stopwatches instead.
const FORBIDDEN_TIMING: &[(&str, bool, &str)] = &[
    ("Instant::now", true, "raw `Instant::now` (use hibd_telemetry::start)"),
    ("SystemTime::now", true, "raw `SystemTime::now` (use hibd_telemetry::start)"),
    (".elapsed", false, "raw `.elapsed()` timing (use hibd_telemetry::start)"),
];

const HOT_MARKER: &str = "#[hibd::hot]";

/// Calls `f(body_start, body_text)` for each `#[hibd::hot]` function body.
/// A marker not followed by any function is reported under `lint`.
fn for_each_hot_body(
    sf: &SourceFile,
    lint: &'static str,
    out: &mut Vec<Violation>,
    mut f: impl FnMut(usize, &str, &mut Vec<Violation>),
) {
    let cleaned = &sf.cleaned;
    let mut search = 0;
    while let Some(p) = cleaned[search..].find(HOT_MARKER) {
        let attr = search + p;
        search = attr + HOT_MARKER.len();
        // The marked item: first `fn` keyword after the attribute (other
        // attributes/doc lines in between are fine; comments are blanked).
        let Some(fn_pos) = find_word(&cleaned[search..], "fn").first().map(|q| search + q) else {
            out.push(Violation {
                file: sf.path.clone(),
                line: line_of(cleaned, attr),
                lint,
                msg: "#[hibd::hot] not followed by a function".to_string(),
            });
            continue;
        };
        let Some(span) = sf.fns().iter().find(|s| s.fn_pos == fn_pos) else { continue };
        let Some(body) = span.body.clone() else {
            continue; // trait method signature without a body
        };
        f(body.start, &cleaned[body], out);
    }
}

fn scan_body(
    sf: &SourceFile,
    body_start: usize,
    body: &str,
    table: &[(&str, bool, &str)],
    lint: &'static str,
    out: &mut Vec<Violation>,
) {
    for &(pat, boundary, desc) in table {
        let mut from = 0;
        while let Some(q) = body[from..].find(pat) {
            let pos = from + q;
            from = pos + 1;
            if boundary && pos > 0 && is_ident_byte(body.as_bytes()[pos - 1]) {
                continue;
            }
            out.push(Violation {
                file: sf.path.clone(),
                line: line_of(&sf.cleaned, body_start + pos),
                lint,
                msg: format!("{desc} inside #[hibd::hot] fn"),
            });
        }
    }
}

/// The hot-alloc pass (also owns the dangling-marker diagnostic).
pub fn run_alloc(sf: &SourceFile, out: &mut Vec<Violation>) {
    for_each_hot_body(sf, "hot-alloc", out, |start, body, out| {
        scan_body(sf, start, body, FORBIDDEN_ALLOC, "hot-alloc", out);
    });
}

/// The hot-timing pass.
pub fn run_timing(sf: &SourceFile, out: &mut Vec<Violation>) {
    // The dangling-marker case is reported by run_alloc; swallow it here so
    // it isn't double-counted.
    let mut scratch = Vec::new();
    for_each_hot_body(sf, "hot-timing", &mut scratch, |start, body, _| {
        scan_body(sf, start, body, FORBIDDEN_TIMING, "hot-timing", out);
    });
}
