//! The shared lexical layer every lint builds on: comment/literal blanking,
//! word-boundary search, and function-body extraction.
//!
//! The vendored dependency set has no `syn`, so the scanner is a hand-rolled
//! state machine over a comment/string-blanked copy of each source file. It
//! has no type information; the lints compensate by matching on constructs
//! that are unambiguous at the token level (attribute forms, `::`-qualified
//! paths, identifier-boundary words) and by supporting justified
//! `// audit:allow(<lint>): <reason>` suppressions for the residue.

use std::ops::Range;

/// Blanks comments and string/char-literal contents with spaces, keeping
/// every newline (and therefore every line number) intact — and, by
/// construction, every char position: the cleaned text has exactly as many
/// chars as the input. Code tokens pass through verbatim, so structural
/// scans (brace matching, keyword search) cannot be fooled by `unsafe` or
/// `vec!` appearing inside a comment or a string.
pub fn clean_source(src: &str) -> String {
    clean_source_impl(src).0
}

/// Plain `//` line comments found while cleaning, as `(1-based line, raw
/// text including the `//`)`. Doc comments (`///`, `//!`) are prose, not
/// suppressions, and are excluded — as is anything inside a string literal,
/// so an `audit:allow` quoted in a test fixture string never parses.
pub fn line_comments(src: &str) -> Vec<(usize, String)> {
    clean_source_impl(src).1
}

fn clean_source_impl(src: &str) -> (String, Vec<(usize, String)>) {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = String::with_capacity(src.len());
    let mut comments = Vec::new();
    let mut i = 0;
    // Whether the previously emitted code char can end an identifier; used
    // to tell a raw-string prefix `r"` from an identifier ending in `r`.
    let mut prev_ident = false;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < n {
        let c = b[i];
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            if !text.starts_with("///") && !text.starts_with("//!") {
                comments.push((start, text));
            }
            continue;
        }
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 0;
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            prev_ident = false;
            continue;
        }
        // Raw (byte) strings: r"...", r#"..."#, br#"..."#.
        if (c == 'r' || c == 'b') && !prev_ident {
            let mut j = i;
            if b[j] == 'b' && j + 1 < n && b[j + 1] == 'r' {
                j += 1;
            }
            if b[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0;
                while k < n && b[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && b[k] == '"' {
                    for _ in i..=k {
                        out.push(' ');
                    }
                    i = k + 1;
                    while i < n {
                        if b[i] == '"' {
                            let mut m = 0;
                            while m < hashes && i + 1 + m < n && b[i + 1 + m] == '#' {
                                m += 1;
                            }
                            if m == hashes {
                                for _ in 0..=hashes {
                                    out.push(' ');
                                }
                                i += 1 + hashes;
                                break;
                            }
                        }
                        out.push(blank(b[i]));
                        i += 1;
                    }
                    prev_ident = false;
                    continue;
                }
            }
        }
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                } else if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            prev_ident = false;
            continue;
        }
        if c == '\'' {
            if i + 1 < n && b[i + 1] == '\\' {
                // Escaped char literal: blank the `'\`, then the escaped
                // char itself (so `'\''` and `'\\'` terminate correctly),
                // then everything through the closing quote.
                out.push_str("  ");
                i += 2;
                if i < n {
                    out.push(blank(b[i]));
                    i += 1;
                }
                while i < n && b[i] != '\'' {
                    out.push(blank(b[i]));
                    i += 1;
                }
                if i < n {
                    out.push(' ');
                    i += 1;
                }
            } else if i + 2 < n && b[i + 2] == '\'' {
                out.push_str("   ");
                i += 3;
            } else {
                // A lifetime: keep the tick so generics stay structural.
                out.push('\'');
                i += 1;
            }
            prev_ident = false;
            continue;
        }
        out.push(c);
        prev_ident = c.is_alphanumeric() || c == '_';
        i += 1;
    }
    // Comment starts were recorded as char indices; resolve them to line
    // numbers in one ascending pass.
    let mut line = 1;
    let mut at = 0;
    let comments = comments
        .into_iter()
        .map(|(idx, text)| {
            line += b[at..idx].iter().filter(|&&c| c == '\n').count();
            at = idx;
            (line, text)
        })
        .collect();
    (out, comments)
}

pub fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Byte offsets of `word` in `hay` at identifier boundaries.
pub fn find_word(hay: &str, word: &str) -> Vec<usize> {
    let hb = hay.as_bytes();
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(p) = hay[start..].find(word) {
        let pos = start + p;
        let end = pos + word.len();
        let before_ok = pos == 0 || !is_ident_byte(hb[pos - 1]);
        let after_ok = end >= hb.len() || !is_ident_byte(hb[end]);
        if before_ok && after_ok {
            out.push(pos);
        }
        start = pos + 1;
    }
    out
}

/// First non-whitespace token at or after `from`: a single punct char, or a
/// full identifier. Returns the token and its byte offset.
pub fn next_token(hay: &str, from: usize) -> Option<(&str, usize)> {
    let hb = hay.as_bytes();
    let mut i = from;
    while i < hb.len() && hb[i].is_ascii_whitespace() {
        i += 1;
    }
    if i >= hb.len() {
        return None;
    }
    if is_ident_byte(hb[i]) {
        let mut j = i;
        while j < hb.len() && is_ident_byte(hb[j]) {
            j += 1;
        }
        Some((&hay[i..j], i))
    } else {
        Some((&hay[i..=i], i))
    }
}

/// 1-based line number of byte `offset` in `hay`.
pub fn line_of(hay: &str, offset: usize) -> usize {
    hay.as_bytes()[..offset].iter().filter(|&&c| c == b'\n').count() + 1
}

/// Byte range `open..=close` of the brace-balanced block starting at the
/// `{` at `open` (range end is exclusive of nothing: it includes the closing
/// brace). Returns `open..len` when the block is unterminated.
fn brace_block(cleaned: &str, open: usize) -> Range<usize> {
    let bytes = cleaned.as_bytes();
    debug_assert_eq!(bytes[open], b'{');
    let mut depth = 0usize;
    for (idx, &c) in bytes.iter().enumerate().skip(open) {
        if c == b'{' {
            depth += 1;
        } else if c == b'}' {
            depth -= 1;
            if depth == 0 {
                return open..idx + 1;
            }
        }
    }
    open..cleaned.len()
}

/// One `fn` item (or nested fn) found in the cleaned text.
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Byte offset of the `fn` keyword in the cleaned text.
    pub fn_pos: usize,
    /// Byte range of the `{ ... }` body (braces included); `None` for
    /// bodyless signatures (trait declarations, extern decls).
    pub body: Option<Range<usize>>,
}

/// A parsed source file: original text, blanked copy, extracted function
/// spans, and `#[cfg(test)] mod` ranges. Built once per file; every lint
/// reads from it.
pub struct SourceFile {
    /// Workspace-relative, `/`-separated path (used for reporting and for
    /// path-scoped lints).
    pub path: String,
    /// Original text (the SAFETY-comment lint consults real comments).
    pub src: String,
    /// Comment/literal-blanked copy, same length and line structure.
    pub cleaned: String,
    fns: Vec<FnSpan>,
    cfg_test: Vec<Range<usize>>,
}

impl SourceFile {
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let cleaned = clean_source(src);
        let fns = extract_fns(&cleaned);
        let cfg_test = cfg_test_ranges(&cleaned);
        SourceFile { path: path.to_string(), src: src.to_string(), cleaned, fns, cfg_test }
    }

    /// Every function found in the file, in source order.
    pub fn fns(&self) -> &[FnSpan] {
        &self.fns
    }

    /// The innermost function whose body contains `offset`.
    pub fn enclosing_fn(&self, offset: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body.as_ref().is_some_and(|b| b.contains(&offset)))
            .max_by_key(|f| f.body.as_ref().unwrap().start)
    }

    /// Whether `offset` sits inside a `#[cfg(test)] mod` body.
    pub fn in_cfg_test(&self, offset: usize) -> bool {
        self.cfg_test.iter().any(|r| r.contains(&offset))
    }

    /// Whether the file lives in a test tree (`tests/` integration dir).
    pub fn in_test_dir(&self) -> bool {
        self.path.split('/').any(|seg| seg == "tests")
    }

    /// Test code = integration-test file or `#[cfg(test)]` module body.
    pub fn is_test_code(&self, offset: usize) -> bool {
        self.in_test_dir() || self.in_cfg_test(offset)
    }
}

/// Extracts every `fn` item (including nested fns) from the cleaned text.
/// `fn`-pointer types (`fn(` with no name) are skipped. The body is the
/// first top-level `{ ... }` after the signature; a `;` first means a
/// bodyless declaration. `(`/`[` nesting is tracked so array types like
/// `[u8; 3]` in the signature don't end the scan early.
fn extract_fns(cleaned: &str) -> Vec<FnSpan> {
    let bytes = cleaned.as_bytes();
    let mut out = Vec::new();
    for pos in find_word(cleaned, "fn") {
        let Some((name, name_pos)) = next_token(cleaned, pos + 2) else { continue };
        if !name.as_bytes().first().is_some_and(|&c| c.is_ascii_alphabetic() || c == b'_') {
            continue; // `fn(` pointer type, `fn()` trait sugar
        }
        let mut i = name_pos + name.len();
        let mut depth = 0i32;
        let mut body = None;
        while i < bytes.len() {
            match bytes[i] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    body = Some(brace_block(cleaned, i));
                    break;
                }
                b';' if depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        out.push(FnSpan { name: name.to_string(), fn_pos: pos, body });
    }
    out
}

/// Byte ranges of `#[cfg(test)] mod <name> { ... }` bodies.
fn cfg_test_ranges(cleaned: &str) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    for pos in find_word(cleaned, "cfg") {
        if !cleaned[..pos].trim_end().ends_with("#[") {
            continue;
        }
        let after = &cleaned[pos + 3..];
        if !after.starts_with("(test)]") {
            continue;
        }
        let rest = pos + 3 + "(test)]".len();
        let Some((tok, tok_pos)) = next_token(cleaned, rest) else { continue };
        if tok != "mod" {
            continue;
        }
        if let Some(open_rel) = cleaned[tok_pos..].find('{') {
            out.push(brace_block(cleaned, tok_pos + open_rel));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_extraction_finds_names_and_bodies() {
        let src = "fn outer(x: [u8; 3]) -> usize {\n    fn inner() {}\n    x.len()\n}\ntrait T { fn decl(&self); }\n";
        let sf = SourceFile::parse("x.rs", src);
        let names: Vec<&str> = sf.fns().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner", "decl"]);
        assert!(sf.fns()[0].body.is_some());
        assert!(sf.fns()[1].body.is_some());
        assert!(sf.fns()[2].body.is_none(), "trait decl has no body");
        // The inner fn is innermost at its own body, outer elsewhere.
        let inner_body = sf.fns()[1].body.clone().unwrap();
        assert_eq!(sf.enclosing_fn(inner_body.start + 1).unwrap().name, "inner");
        let tail = src.find("x.len()").unwrap();
        assert_eq!(sf.enclosing_fn(tail).unwrap().name, "outer");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let sf = SourceFile::parse("x.rs", "type F = fn(usize) -> usize;\n");
        assert!(sf.fns().is_empty());
    }

    #[test]
    fn cfg_test_module_ranges_cover_their_tests() {
        let src = "pub fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::prod(); }\n}\n";
        let sf = SourceFile::parse("x.rs", src);
        let t_pos = src.find("super::prod").unwrap();
        assert!(sf.in_cfg_test(t_pos));
        assert!(!sf.in_cfg_test(src.find("pub fn prod").unwrap()));
        assert!(sf.is_test_code(t_pos));
    }

    #[test]
    fn test_dir_paths_are_test_code_everywhere() {
        let sf = SourceFile::parse("crates/fft/tests/simd_equivalence.rs", "fn helper() {}\n");
        assert!(sf.in_test_dir());
        assert!(sf.is_test_code(0));
        let bench = SourceFile::parse("crates/bench/benches/fft_leaf_radix.rs", "fn main() {}\n");
        assert!(!bench.in_test_dir());
    }

    #[test]
    fn escaped_quote_char_literal_terminates() {
        let src = "let q = '\\''; let b = '\\\\'; let u = '\\u{1F600}'; fn f() { }\n";
        let c = clean_source(src);
        assert_eq!(c.chars().count(), src.chars().count());
        // The braces of the unicode escape are blanked; only f's body braces
        // survive.
        assert_eq!(c.matches('{').count(), 1);
        assert_eq!(c.matches('}').count(), 1);
        assert!(c.contains("fn f"));
    }
}
