//! Workspace audit lints (`cargo run -p xtask -- audit`).
//!
//! Nine machine-checked invariants, all lexical (the vendored dependency
//! set has no `syn`, so the scanner is a hand-rolled state machine over a
//! comment/string-blanked copy of each source file — see
//! [`lints::source`]). The lints live in [`lints`], one module each, behind
//! a registry ([`lints::LINTS`]):
//!
//! 1. **hot-alloc** — no heap-allocating constructs in `#[hibd::hot]`
//!    bodies (`Vec::resize` on long-lived scratch is the sanctioned idiom).
//! 2. **hot-timing** — no raw wall clocks in `#[hibd::hot]` bodies; time
//!    with the `hibd_telemetry` stopwatches.
//! 3. **safety-comment** — `// SAFETY:` before every unsafe
//!    block/impl/trait.
//! 4. **safety-doc** — a `# Safety` rustdoc section on every
//!    `pub unsafe fn`.
//! 5. **simd-dispatch** — `#[target_feature]` kernels are `unsafe fn`,
//!    named `*_avx2`, with a `*_scalar` twin in the same file.
//! 6. **fma-discipline** — `mul_add` only inside `*_avx2` kernels; the
//!    scalar expression trees that back every bitwise contract stay
//!    FMA-free.
//! 7. **nondeterministic-iteration** — no `HashMap`/`HashSet` in non-test
//!    code of the deterministic crates (fft/pme/rpy/treecode/engine/core).
//! 8. **global-state-serialization** — tests that toggle
//!    `hibd_simd::ScalarGuard`/`force_scalar` or the global telemetry
//!    recorder hold a serialization lock while they do.
//! 9. **env-mutation** — no `std::env::set_var`/`remove_var` outside the
//!    `hibd-simd` dispatch crate.
//!
//! A finding can be suppressed only by a justified
//! `// audit:allow(<lint>): <reason>` comment on the flagged line or the
//! line above; a missing reason or an unknown lint name is itself a
//! violation. Positive/negative fixtures per lint live in
//! `crates/xtask/fixtures/`; the fixture tests run under plain
//! `cargo test`, and `tests/workspace_is_clean.rs` runs the full audit so
//! `cargo test --workspace` is a superset of the CI gate.

pub mod lints;

pub use lints::source::clean_source;
pub use lints::{Lint, Violation, LINTS};

use lints::source::SourceFile;
use std::path::{Path, PathBuf};

/// Runs every lint over one source file. `file` is used for reporting and
/// for the path-scoped lints (pass workspace-relative, `/`-separated
/// paths).
pub fn audit_source(file: &str, src: &str) -> Vec<Violation> {
    lints::run_all(&SourceFile::parse(file, src))
}

/// Collects every `.rs` file under `root`, skipping build output, VCS
/// internals, archived results, and the audit's own negative fixtures.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "results", "vendor"];
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Audits the whole workspace rooted at `root`. Returns (files scanned,
/// violations).
pub fn audit_workspace(root: &Path) -> std::io::Result<(usize, Vec<Violation>)> {
    let files = collect_rs_files(root)?;
    let mut violations = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let display = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        violations.extend(audit_source(&display, &src));
    }
    Ok((files.len(), violations))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the audit result as a `hibd-audit-v1` JSON document — the
/// machine-readable finding feed CI uploads and turns into annotations.
#[must_use]
pub fn render_json(nfiles: usize, violations: &[Violation]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"hibd-audit-v1\",\n");
    out.push_str(&format!("  \"files\": {nfiles},\n"));
    out.push_str(&format!("  \"lints\": [{}],\n", {
        let names: Vec<String> = LINTS.iter().map(|l| format!("\"{}\"", l.name)).collect();
        names.join(", ")
    }));
    out.push_str("  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"msg\": \"{}\"}}",
            json_escape(&v.file),
            v.line,
            json_escape(v.lint),
            json_escape(&v.msg)
        ));
    }
    if violations.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleaner_blanks_comments_and_strings_keeps_lines() {
        let src = "let a = \"unsafe { vec![] }\"; // vec! here\nlet b = 1; /* unsafe */\n";
        let c = clean_source(src);
        assert_eq!(c.lines().count(), src.lines().count());
        assert!(!c.contains("vec!"));
        assert!(!c.contains("unsafe"));
        assert!(c.contains("let a ="));
        assert!(c.contains("let b = 1;"));
    }

    #[test]
    fn cleaner_handles_lifetimes_char_literals_raw_strings() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = '{'; let s = r#\"vec!{\"#; c }\n";
        let c = clean_source(src);
        assert!(c.contains("<'a>"));
        assert!(!c.contains("vec!"));
        // The blanked char literal must not unbalance brace matching.
        let opens = c.matches('{').count();
        let closes = c.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn hot_fn_with_vec_macro_is_rejected() {
        let src = include_str!("../fixtures/bad_hot_alloc.rs");
        let v = audit_source("bad_hot_alloc.rs", src);
        assert!(
            v.iter().any(|x| x.lint == "hot-alloc" && x.msg.contains("vec!")),
            "expected a hot-alloc violation, got {v:?}"
        );
        assert!(v.iter().any(|x| x.msg.contains(".collect")), "collect not flagged: {v:?}");
        assert!(v.iter().any(|x| x.msg.contains("Box::new")), "Box::new not flagged: {v:?}");
    }

    #[test]
    fn hot_fn_with_raw_clock_is_rejected() {
        let src = include_str!("../fixtures/bad_hot_timing.rs");
        let v = audit_source("bad_hot_timing.rs", src);
        assert!(
            v.iter().any(|x| x.lint == "hot-timing" && x.msg.contains("Instant::now")),
            "Instant::now not flagged: {v:?}"
        );
        assert!(v.iter().any(|x| x.msg.contains(".elapsed")), ".elapsed not flagged: {v:?}");
        assert!(
            v.iter().any(|x| x.msg.contains("SystemTime::now")),
            "SystemTime::now not flagged: {v:?}"
        );
    }

    #[test]
    fn telemetry_stopwatch_in_hot_fn_passes() {
        let src = "use hibd_hot as hibd;\n#[hibd::hot]\nfn f(x: &mut [f64]) -> f64 {\n    let sw = hibd_telemetry::start(hibd_telemetry::Phase::Spreading);\n    x[0] += 1.0;\n    sw.stop()\n}\n";
        let v = audit_source("inline.rs", src);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn clean_hot_fn_passes() {
        let src = include_str!("../fixtures/good_hot.rs");
        let v = audit_source("good_hot.rs", src);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn unsafe_without_safety_comment_is_rejected() {
        let src = include_str!("../fixtures/bad_unsafe.rs");
        let v = audit_source("bad_unsafe.rs", src);
        assert!(v.iter().any(|x| x.lint == "safety-comment"), "got {v:?}");
        assert!(v.iter().any(|x| x.lint == "safety-doc"), "got {v:?}");
    }

    #[test]
    fn documented_unsafe_passes() {
        let src = include_str!("../fixtures/good_unsafe.rs");
        let v = audit_source("good_unsafe.rs", src);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn vec_in_comment_or_string_not_flagged() {
        let src = "use hibd_hot as hibd;\n#[hibd::hot]\nfn f(x: &mut [f64]) {\n    // vec! would be wrong here\n    let _s = \"vec![0.0; 3]\";\n    x[0] += 1.0;\n}\n";
        let v = audit_source("inline.rs", src);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn simd_kernel_pair_passes() {
        let src = include_str!("../fixtures/good_simd.rs");
        let v = audit_source("good_simd.rs", src);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn simd_dispatch_violations_are_rejected() {
        let src = include_str!("../fixtures/bad_simd.rs");
        let v = audit_source("bad_simd.rs", src);
        assert!(
            v.iter().any(|x| x.lint == "simd-dispatch" && x.msg.contains("must be `unsafe`")),
            "safe target_feature fn not flagged: {v:?}"
        );
        assert!(
            v.iter().any(|x| x.lint == "simd-dispatch"
                && x.msg.contains("`sum_fast`")
                && x.msg.contains("*_avx2")),
            "mis-named kernel not flagged: {v:?}"
        );
        assert!(
            v.iter().any(|x| x.lint == "simd-dispatch"
                && x.msg.contains("`dot_avx2`")
                && x.msg.contains("fn dot_scalar")),
            "missing scalar fallback not flagged: {v:?}"
        );
        let dispatch = v.iter().filter(|x| x.lint == "simd-dispatch").count();
        assert_eq!(dispatch, 3, "exactly the three seeded violations expected: {v:?}");
    }

    #[test]
    fn cfg_target_feature_mention_is_not_a_kernel() {
        // Only the attribute form defines a kernel; a cfg predicate or a
        // string mention must not trip the lint.
        let src = "#[cfg(all(target_arch = \"x86_64\", target_feature = \"avx2\"))]\nfn f() {}\n";
        let v = audit_source("inline.rs", src);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn resize_is_allowed_in_hot_fn() {
        let src =
            "#[hibd::hot]\nfn f(buf: &mut Vec<f64>, n: usize) {\n    buf.resize(n, 0.0);\n}\n";
        assert!(audit_source("inline.rs", src).is_empty());
    }

    #[test]
    fn suppressed_fixture_is_clean_and_unjustified_fixture_is_not() {
        let good = include_str!("../fixtures/good_allow.rs");
        let v = audit_source("good_allow.rs", good);
        assert!(v.is_empty(), "justified allows must suppress: {v:?}");

        let bad = include_str!("../fixtures/bad_allow.rs");
        let v = audit_source("bad_allow.rs", bad);
        assert!(v.iter().any(|x| x.lint == "audit-allow"), "missing-reason allow: {v:?}");
        assert!(
            v.iter().any(|x| x.lint == "env-mutation"),
            "unjustified allow must not suppress: {v:?}"
        );
    }

    #[test]
    fn json_rendering_is_wellformed_and_escaped() {
        let v = vec![Violation {
            file: "a\\b.rs".to_string(),
            line: 3,
            lint: "hot-alloc",
            msg: "say \"no\"\nplease".to_string(),
        }];
        let doc = render_json(7, &v);
        assert!(doc.contains("\"schema\": \"hibd-audit-v1\""));
        assert!(doc.contains("\"files\": 7"));
        assert!(doc.contains("a\\\\b.rs"));
        assert!(doc.contains("say \\\"no\\\"\\nplease"));
        let empty = render_json(2, &[]);
        assert!(empty.contains("\"violations\": []"));
        // Every registered lint is advertised in the schema.
        for lint in LINTS {
            assert!(empty.contains(lint.name), "missing {} in doc", lint.name);
        }
    }
}
