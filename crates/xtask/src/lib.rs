//! Workspace audit lints (`cargo run -p xtask -- audit`).
//!
//! Five machine-checked invariants, all lexical (the vendored dependency
//! set has no `syn`, so the scanner is a hand-rolled state machine over a
//! comment/string-blanked copy of each source file):
//!
//! 1. **hot-alloc** — a function marked `#[hibd::hot]` must not contain
//!    heap-allocating constructs (`vec!`, `Vec::new`, `collect`, `to_vec`,
//!    `Box::new`, ...). `Vec::resize` on long-lived scratch is the
//!    sanctioned grow-only idiom and is allowed.
//! 2. **hot-timing** — a `#[hibd::hot]` body must not read wall clocks
//!    directly (`Instant::now`, `SystemTime::now`, `.elapsed()`). The
//!    sanctioned mechanism is `hibd_telemetry` (`start`/`span`/`timed`,
//!    `incr`, `gauge_max`): those calls are allocation-free, compile to a
//!    single relaxed load when recording is disabled, and feed the global
//!    phase recorder — so they are whitelisted by construction (the lint
//!    only matches the raw clock constructs).
//! 3. **safety-comment** — every `unsafe` block / `unsafe impl` /
//!    `unsafe trait` must be immediately preceded by a `// SAFETY:` comment
//!    explaining why the contract holds.
//! 4. **safety-doc** — every `pub unsafe fn` must carry a `# Safety`
//!    rustdoc section.
//! 5. **simd-dispatch** — every `#[target_feature(...)]` kernel must be an
//!    `unsafe fn` (so each call site goes through an `unsafe` block that the
//!    safety-comment lint covers), must be named `<stem>_avx2` after the
//!    instruction set it requires, and must have a scalar fallback
//!    `fn <stem>_scalar` in the same file — the dispatch layer
//!    (`hibd_simd::avx2()`) always has a semantically equivalent path on
//!    non-AVX2 hosts and under `HIBD_SIMD=off`.
//!
//! The scanner first blanks comments and string/char literals (preserving
//! newlines, so line numbers survive), then pattern-matches on the cleaned
//! text; the SAFETY-comment lint consults the *original* lines. False
//! positives are possible in principle (the scanner has no type
//! information) but have not occurred on this codebase; a justified
//! exception would be handled by refactoring the allocation out of the hot
//! function, not by suppressing the lint.

use std::fmt;
use std::path::{Path, PathBuf};

/// One audit finding.
#[derive(Clone, Debug)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub lint: &'static str,
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.lint, self.msg)
    }
}

/// Blanks comments and string/char-literal contents with spaces, keeping
/// every newline (and therefore every line number) intact. Code tokens pass
/// through verbatim, so structural scans (brace matching, keyword search)
/// cannot be fooled by `unsafe` or `vec!` appearing inside a comment or a
/// string.
pub fn clean_source(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    // Whether the previously emitted code char can end an identifier; used
    // to tell a raw-string prefix `r"` from an identifier ending in `r`.
    let mut prev_ident = false;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < n {
        let c = b[i];
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 0;
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            prev_ident = false;
            continue;
        }
        // Raw (byte) strings: r"...", r#"..."#, br#"..."#.
        if (c == 'r' || c == 'b') && !prev_ident {
            let mut j = i;
            if b[j] == 'b' && j + 1 < n && b[j + 1] == 'r' {
                j += 1;
            }
            if b[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0;
                while k < n && b[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && b[k] == '"' {
                    for _ in i..=k {
                        out.push(' ');
                    }
                    i = k + 1;
                    while i < n {
                        if b[i] == '"' {
                            let mut m = 0;
                            while m < hashes && i + 1 + m < n && b[i + 1 + m] == '#' {
                                m += 1;
                            }
                            if m == hashes {
                                for _ in 0..=hashes {
                                    out.push(' ');
                                }
                                i += 1 + hashes;
                                break;
                            }
                        }
                        out.push(blank(b[i]));
                        i += 1;
                    }
                    prev_ident = false;
                    continue;
                }
            }
        }
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                } else if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            prev_ident = false;
            continue;
        }
        if c == '\'' {
            if i + 1 < n && b[i + 1] == '\\' {
                // Escaped char literal: blank through the closing quote.
                out.push_str("  ");
                i += 2;
                while i < n && b[i] != '\'' {
                    out.push(blank(b[i]));
                    i += 1;
                }
                if i < n {
                    out.push(' ');
                    i += 1;
                }
            } else if i + 2 < n && b[i + 2] == '\'' {
                out.push_str("   ");
                i += 3;
            } else {
                // A lifetime: keep the tick so generics stay structural.
                out.push('\'');
                i += 1;
            }
            prev_ident = false;
            continue;
        }
        out.push(c);
        prev_ident = c.is_alphanumeric() || c == '_';
        i += 1;
    }
    out
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Byte offsets of `word` in `hay` at identifier boundaries.
fn find_word(hay: &str, word: &str) -> Vec<usize> {
    let hb = hay.as_bytes();
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(p) = hay[start..].find(word) {
        let pos = start + p;
        let end = pos + word.len();
        let before_ok = pos == 0 || !is_ident_byte(hb[pos - 1]);
        let after_ok = end >= hb.len() || !is_ident_byte(hb[end]);
        if before_ok && after_ok {
            out.push(pos);
        }
        start = pos + 1;
    }
    out
}

/// First non-whitespace token at or after `from`: a single punct char, or a
/// full identifier. Returns the token and its byte offset.
fn next_token(hay: &str, from: usize) -> Option<(&str, usize)> {
    let hb = hay.as_bytes();
    let mut i = from;
    while i < hb.len() && hb[i].is_ascii_whitespace() {
        i += 1;
    }
    if i >= hb.len() {
        return None;
    }
    if is_ident_byte(hb[i]) {
        let mut j = i;
        while j < hb.len() && is_ident_byte(hb[j]) {
            j += 1;
        }
        Some((&hay[i..j], i))
    } else {
        Some((&hay[i..=i], i))
    }
}

fn line_of(hay: &str, offset: usize) -> usize {
    hay.as_bytes()[..offset].iter().filter(|&&c| c == b'\n').count() + 1
}

/// Heap-allocating constructs forbidden inside `#[hibd::hot]` bodies. Each
/// entry is (pattern, must start at an identifier boundary, description).
const FORBIDDEN: &[(&str, bool, &str)] = &[
    ("vec!", true, "allocating macro `vec!`"),
    ("format!", true, "allocating macro `format!`"),
    ("Vec::new", true, "fresh `Vec::new` (reuse resize-grown scratch instead)"),
    ("Vec::with_capacity", true, "fresh `Vec::with_capacity`"),
    ("Vec::from", true, "fresh `Vec::from`"),
    ("Box::new", true, "heap `Box::new`"),
    ("String::new", true, "fresh `String::new`"),
    ("String::from", true, "fresh `String::from`"),
    (".to_vec", false, "allocating `.to_vec()`"),
    (".to_owned", false, "allocating `.to_owned()`"),
    (".to_string", false, "allocating `.to_string()`"),
    (".collect", false, "allocating `.collect()`"),
];

/// Raw wall-clock constructs forbidden inside `#[hibd::hot]` bodies; time
/// hot code with the `hibd_telemetry` stopwatches instead.
const FORBIDDEN_TIMING: &[(&str, bool, &str)] = &[
    ("Instant::now", true, "raw `Instant::now` (use hibd_telemetry::start)"),
    ("SystemTime::now", true, "raw `SystemTime::now` (use hibd_telemetry::start)"),
    (".elapsed", false, "raw `.elapsed()` timing (use hibd_telemetry::start)"),
];

const HOT_MARKER: &str = "#[hibd::hot]";

/// Lints 1 and 2: no allocating or raw-clock constructs inside
/// `#[hibd::hot]` function bodies.
fn lint_hot_alloc(file: &str, cleaned: &str, out: &mut Vec<Violation>) {
    let mut search = 0;
    while let Some(p) = cleaned[search..].find(HOT_MARKER) {
        let attr = search + p;
        search = attr + HOT_MARKER.len();
        // The marked item: first `fn` keyword after the attribute (other
        // attributes/doc lines in between are fine; comments are blanked).
        let Some(fn_pos) = find_word(&cleaned[search..], "fn").first().map(|q| search + q) else {
            out.push(Violation {
                file: file.to_string(),
                line: line_of(cleaned, attr),
                lint: "hot-alloc",
                msg: "#[hibd::hot] not followed by a function".to_string(),
            });
            continue;
        };
        let Some(open_rel) = cleaned[fn_pos..].find('{') else {
            continue; // trait method signature without a body
        };
        let open = fn_pos + open_rel;
        let bytes = cleaned.as_bytes();
        let mut depth = 0usize;
        let mut close = open;
        for (idx, &c) in bytes.iter().enumerate().skip(open) {
            if c == b'{' {
                depth += 1;
            } else if c == b'}' {
                depth -= 1;
                if depth == 0 {
                    close = idx;
                    break;
                }
            }
        }
        let body = &cleaned[open..close];
        let tables = [(FORBIDDEN, "hot-alloc"), (FORBIDDEN_TIMING, "hot-timing")];
        for (table, lint) in tables {
            for &(pat, boundary, desc) in table {
                let mut from = 0;
                while let Some(q) = body[from..].find(pat) {
                    let pos = from + q;
                    from = pos + 1;
                    if boundary && pos > 0 && is_ident_byte(body.as_bytes()[pos - 1]) {
                        continue;
                    }
                    out.push(Violation {
                        file: file.to_string(),
                        line: line_of(cleaned, open + pos),
                        lint,
                        msg: format!("{desc} inside #[hibd::hot] fn"),
                    });
                }
            }
        }
    }
}

/// Does any `//` comment line directly above `line` (1-based) mention
/// `SAFETY`? The comment block must touch the statement: the first
/// non-comment line above it ends the search.
fn preceded_by_safety_comment(lines: &[&str], line: usize) -> bool {
    let mut i = line - 1; // index of the line holding the `unsafe` token
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if t.starts_with("//") {
            if t.contains("SAFETY") {
                return true;
            }
        } else {
            return false;
        }
    }
    false
}

/// Do the doc comments above `line` (1-based, attributes allowed in
/// between) contain a `# Safety` section?
fn doc_has_safety_section(lines: &[&str], line: usize) -> bool {
    let mut i = line - 1;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if t.starts_with("///") || t.starts_with("//!") {
            if t.contains("# Safety") {
                return true;
            }
        } else if t.starts_with("#[") || t.starts_with("#![") || t.starts_with("//") {
            // Attributes and plain comments may sit between docs and item.
        } else {
            return false;
        }
    }
    false
}

/// Lints 2 and 3: `// SAFETY:` before unsafe blocks/impls, `# Safety` docs
/// on `pub unsafe fn`.
fn lint_unsafe(file: &str, src: &str, cleaned: &str, out: &mut Vec<Violation>) {
    let lines: Vec<&str> = src.lines().collect();
    for pos in find_word(cleaned, "unsafe") {
        let Some((tok, _)) = next_token(cleaned, pos + "unsafe".len()) else {
            continue;
        };
        let line = line_of(cleaned, pos);
        match tok {
            "{" if !preceded_by_safety_comment(&lines, line) => {
                out.push(Violation {
                    file: file.to_string(),
                    line,
                    lint: "safety-comment",
                    msg: "unsafe block without a preceding // SAFETY: comment".to_string(),
                });
            }
            "impl" | "trait" if !preceded_by_safety_comment(&lines, line) => {
                out.push(Violation {
                    file: file.to_string(),
                    line,
                    lint: "safety-comment",
                    msg: format!("unsafe {tok} without a preceding // SAFETY: comment"),
                });
            }
            "fn" | "extern" => {
                // `pub [const] unsafe fn` needs a `# Safety` doc section.
                let head_start = cleaned[..pos].rfind('\n').map_or(0, |q| q + 1);
                let head = &cleaned[head_start..pos];
                let is_pub = !find_word(head, "pub").is_empty();
                if is_pub && !doc_has_safety_section(&lines, line) {
                    out.push(Violation {
                        file: file.to_string(),
                        line,
                        lint: "safety-doc",
                        msg: "pub unsafe fn without a `# Safety` doc section".to_string(),
                    });
                }
            }
            _ => {}
        }
    }
}

/// Is there a `fn` item named exactly `name` anywhere in the cleaned file?
fn has_fn_named(cleaned: &str, name: &str) -> bool {
    find_word(cleaned, name).into_iter().any(|pos| {
        let head = cleaned[..pos].trim_end();
        head.ends_with("fn") && (head.len() < 3 || !is_ident_byte(head.as_bytes()[head.len() - 3]))
    })
}

/// Lint 5: SIMD dispatch hygiene. A `#[target_feature(...)]` kernel is only
/// sound to call when the host supports the requested instruction set, so
/// it must be `unsafe fn` (forcing every call through an `unsafe` block the
/// safety-comment lint covers), its name must end `_avx2` to advertise the
/// requirement, and a `_scalar` sibling with the same stem must live in the
/// same file so dispatch always has a portable fallback.
fn lint_target_feature(file: &str, cleaned: &str, out: &mut Vec<Violation>) {
    for pos in find_word(cleaned, "target_feature") {
        // Only the attribute form `#[target_feature(...)]`; a bare mention
        // (e.g. `cfg(target_feature = ...)`) is not a kernel definition.
        if !cleaned[..pos].trim_end().ends_with('[') {
            continue;
        }
        let line = line_of(cleaned, pos);
        let after = pos + "target_feature".len();
        let Some(fn_rel) = find_word(&cleaned[after..], "fn").first().copied() else {
            out.push(Violation {
                file: file.to_string(),
                line,
                lint: "simd-dispatch",
                msg: "#[target_feature] not followed by a function".to_string(),
            });
            continue;
        };
        let fn_pos = after + fn_rel;
        if find_word(&cleaned[after..fn_pos], "unsafe").is_empty() {
            out.push(Violation {
                file: file.to_string(),
                line,
                lint: "simd-dispatch",
                msg: "#[target_feature] fn must be `unsafe` (call sites carry the \
                      // SAFETY: cpu-feature contract)"
                    .to_string(),
            });
        }
        let Some((name, _)) = next_token(cleaned, fn_pos + "fn".len()) else {
            continue;
        };
        if let Some(stem) = name.strip_suffix("_avx2") {
            let fallback = format!("{stem}_scalar");
            if !has_fn_named(cleaned, &fallback) {
                out.push(Violation {
                    file: file.to_string(),
                    line,
                    lint: "simd-dispatch",
                    msg: format!(
                        "#[target_feature] fn `{name}` has no scalar fallback \
                         `fn {fallback}` in this file"
                    ),
                });
            }
        } else {
            out.push(Violation {
                file: file.to_string(),
                line,
                lint: "simd-dispatch",
                msg: format!(
                    "#[target_feature] fn `{name}` must be named `*_avx2` after the \
                     instruction set it requires"
                ),
            });
        }
    }
}

/// Runs every lint over one source file. `file` is only used for reporting.
pub fn audit_source(file: &str, src: &str) -> Vec<Violation> {
    let cleaned = clean_source(src);
    let mut out = Vec::new();
    lint_hot_alloc(file, &cleaned, &mut out);
    lint_unsafe(file, src, &cleaned, &mut out);
    lint_target_feature(file, &cleaned, &mut out);
    out
}

/// Collects every `.rs` file under `root`, skipping build output, VCS
/// internals, archived results, and the audit's own negative fixtures.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "results", "vendor"];
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Audits the whole workspace rooted at `root`. Returns (files scanned,
/// violations).
pub fn audit_workspace(root: &Path) -> std::io::Result<(usize, Vec<Violation>)> {
    let files = collect_rs_files(root)?;
    let mut violations = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let display = path.strip_prefix(root).unwrap_or(path).display().to_string();
        violations.extend(audit_source(&display, &src));
    }
    Ok((files.len(), violations))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleaner_blanks_comments_and_strings_keeps_lines() {
        let src = "let a = \"unsafe { vec![] }\"; // vec! here\nlet b = 1; /* unsafe */\n";
        let c = clean_source(src);
        assert_eq!(c.lines().count(), src.lines().count());
        assert!(!c.contains("vec!"));
        assert!(!c.contains("unsafe"));
        assert!(c.contains("let a ="));
        assert!(c.contains("let b = 1;"));
    }

    #[test]
    fn cleaner_handles_lifetimes_char_literals_raw_strings() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = '{'; let s = r#\"vec!{\"#; c }\n";
        let c = clean_source(src);
        assert!(c.contains("<'a>"));
        assert!(!c.contains("vec!"));
        // The blanked char literal must not unbalance brace matching.
        let opens = c.matches('{').count();
        let closes = c.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn hot_fn_with_vec_macro_is_rejected() {
        let src = include_str!("../fixtures/bad_hot_alloc.rs");
        let v = audit_source("bad_hot_alloc.rs", src);
        assert!(
            v.iter().any(|x| x.lint == "hot-alloc" && x.msg.contains("vec!")),
            "expected a hot-alloc violation, got {v:?}"
        );
        assert!(v.iter().any(|x| x.msg.contains(".collect")), "collect not flagged: {v:?}");
        assert!(v.iter().any(|x| x.msg.contains("Box::new")), "Box::new not flagged: {v:?}");
    }

    #[test]
    fn hot_fn_with_raw_clock_is_rejected() {
        let src = include_str!("../fixtures/bad_hot_timing.rs");
        let v = audit_source("bad_hot_timing.rs", src);
        assert!(
            v.iter().any(|x| x.lint == "hot-timing" && x.msg.contains("Instant::now")),
            "Instant::now not flagged: {v:?}"
        );
        assert!(v.iter().any(|x| x.msg.contains(".elapsed")), ".elapsed not flagged: {v:?}");
        assert!(
            v.iter().any(|x| x.msg.contains("SystemTime::now")),
            "SystemTime::now not flagged: {v:?}"
        );
    }

    #[test]
    fn telemetry_stopwatch_in_hot_fn_passes() {
        let src = "use hibd_hot as hibd;\n#[hibd::hot]\nfn f(x: &mut [f64]) -> f64 {\n    let sw = hibd_telemetry::start(hibd_telemetry::Phase::Spreading);\n    x[0] += 1.0;\n    sw.stop()\n}\n";
        let v = audit_source("inline.rs", src);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn clean_hot_fn_passes() {
        let src = include_str!("../fixtures/good_hot.rs");
        let v = audit_source("good_hot.rs", src);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn unsafe_without_safety_comment_is_rejected() {
        let src = include_str!("../fixtures/bad_unsafe.rs");
        let v = audit_source("bad_unsafe.rs", src);
        assert!(v.iter().any(|x| x.lint == "safety-comment"), "got {v:?}");
        assert!(v.iter().any(|x| x.lint == "safety-doc"), "got {v:?}");
    }

    #[test]
    fn documented_unsafe_passes() {
        let src = include_str!("../fixtures/good_unsafe.rs");
        let v = audit_source("good_unsafe.rs", src);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn vec_in_comment_or_string_not_flagged() {
        let src = "use hibd_hot as hibd;\n#[hibd::hot]\nfn f(x: &mut [f64]) {\n    // vec! would be wrong here\n    let _s = \"vec![0.0; 3]\";\n    x[0] += 1.0;\n}\n";
        let v = audit_source("inline.rs", src);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn simd_kernel_pair_passes() {
        let src = include_str!("../fixtures/good_simd.rs");
        let v = audit_source("good_simd.rs", src);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn simd_dispatch_violations_are_rejected() {
        let src = include_str!("../fixtures/bad_simd.rs");
        let v = audit_source("bad_simd.rs", src);
        assert!(
            v.iter().any(|x| x.lint == "simd-dispatch" && x.msg.contains("must be `unsafe`")),
            "safe target_feature fn not flagged: {v:?}"
        );
        assert!(
            v.iter().any(|x| x.lint == "simd-dispatch"
                && x.msg.contains("`sum_fast`")
                && x.msg.contains("*_avx2")),
            "mis-named kernel not flagged: {v:?}"
        );
        assert!(
            v.iter().any(|x| x.lint == "simd-dispatch"
                && x.msg.contains("`dot_avx2`")
                && x.msg.contains("fn dot_scalar")),
            "missing scalar fallback not flagged: {v:?}"
        );
        assert_eq!(v.len(), 3, "exactly the three seeded violations expected: {v:?}");
    }

    #[test]
    fn cfg_target_feature_mention_is_not_a_kernel() {
        // Only the attribute form defines a kernel; a cfg predicate or a
        // string mention must not trip the lint.
        let src = "#[cfg(all(target_arch = \"x86_64\", target_feature = \"avx2\"))]\nfn f() {}\n";
        let v = audit_source("inline.rs", src);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn resize_is_allowed_in_hot_fn() {
        let src =
            "#[hibd::hot]\nfn f(buf: &mut Vec<f64>, n: usize) {\n    buf.resize(n, 0.0);\n}\n";
        assert!(audit_source("inline.rs", src).is_empty());
    }
}
