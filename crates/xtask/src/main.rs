//! `cargo run -p xtask -- audit [--root <dir>] [--json <path>] [--github]`:
//! run the nine workspace audit lints. `--json` writes a `hibd-audit-v1`
//! findings document (written on success too, with an empty violation
//! list); `--github` prints GitHub Actions workflow commands so findings
//! render as inline PR annotations.
//!
//! `cargo run -p xtask -- validate-profile <path.json>`: check that a
//! `hibd --profile` output document matches the `hibd-profile-v1` schema.
//!
//! `cargo run -p xtask -- validate-status <status.json>`: check that a
//! `hibd serve` status document matches the `hibd-serve-v1` schema.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .unwrap()
        .to_path_buf()
}

/// Escapes a GitHub Actions workflow-command property value.
fn gha_escape(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    match args.first().map(String::as_str) {
        Some("audit") => {
            let root = flag_value("--root").map_or_else(workspace_root, PathBuf::from);
            let json_path = flag_value("--json");
            let github = args.iter().any(|a| a == "--github");
            match xtask::audit_workspace(&root) {
                Ok((nfiles, violations)) => {
                    for v in &violations {
                        eprintln!("{v}");
                        if github {
                            println!(
                                "::error file={},line={},title=audit {}::{}",
                                v.file,
                                v.line,
                                v.lint,
                                gha_escape(&v.msg)
                            );
                        }
                    }
                    if let Some(path) = json_path {
                        let doc = xtask::render_json(nfiles, &violations);
                        if let Err(e) = std::fs::write(&path, doc) {
                            eprintln!("audit: cannot write {path}: {e}");
                            std::process::exit(2);
                        }
                        eprintln!("audit findings written to {path}");
                    }
                    if violations.is_empty() {
                        println!("audit OK: {nfiles} files, 0 violations");
                    } else {
                        eprintln!(
                            "audit FAILED: {} violations in {nfiles} files",
                            violations.len()
                        );
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("audit error: {e}");
                    std::process::exit(2);
                }
            }
        }
        Some("validate-profile") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: cargo run -p xtask -- validate-profile <path.json>");
                std::process::exit(2);
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("validate-profile: cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            match hibd_cli::profile::validate_profile(&text) {
                Ok(()) => println!("profile OK: {path}"),
                Err(e) => {
                    eprintln!("profile INVALID: {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("validate-status") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: cargo run -p xtask -- validate-status <status.json>");
                std::process::exit(2);
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("validate-status: cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            match hibd_serve::validate_status(&text) {
                Ok(()) => println!("status OK: {path}"),
                Err(e) => {
                    eprintln!("status INVALID: {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- <audit [--root <workspace-dir>] \
                 [--json <out.json>] [--github] | validate-profile <path.json> | \
                 validate-status <status.json>>"
            );
            std::process::exit(2);
        }
    }
}
