//! `cargo run -p xtask -- audit`: run the workspace audit lints.
//! `cargo run -p xtask -- validate-profile <path.json>`: check that a
//! `hibd --profile` output document matches the `hibd-profile-v1` schema.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .unwrap()
        .to_path_buf()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => {
            let root = args
                .iter()
                .position(|a| a == "--root")
                .and_then(|i| args.get(i + 1))
                .map_or_else(workspace_root, PathBuf::from);
            match xtask::audit_workspace(&root) {
                Ok((nfiles, violations)) => {
                    for v in &violations {
                        eprintln!("{v}");
                    }
                    if violations.is_empty() {
                        println!("audit OK: {nfiles} files, 0 violations");
                    } else {
                        eprintln!(
                            "audit FAILED: {} violations in {nfiles} files",
                            violations.len()
                        );
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("audit error: {e}");
                    std::process::exit(2);
                }
            }
        }
        Some("validate-profile") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: cargo run -p xtask -- validate-profile <path.json>");
                std::process::exit(2);
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("validate-profile: cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            match hibd_cli::profile::validate_profile(&text) {
                Ok(()) => println!("profile OK: {path}"),
                Err(e) => {
                    eprintln!("profile INVALID: {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- <audit [--root <workspace-dir>] | \
                 validate-profile <path.json>>"
            );
            std::process::exit(2);
        }
    }
}
