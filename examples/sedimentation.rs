//! Sedimentation of a suspension under gravity.
//!
//! Hydrodynamic interactions qualitatively change sedimentation: the mean
//! settling speed of a periodic suspension is *hindered* relative to an
//! isolated Stokes sphere (backflow through the periodic box), and
//! velocity fluctuations are collective. This example measures the mean
//! settling velocity with the matrix-free mobility and compares it with the
//! isolated-sphere value `v0 = mu0 F`, and with what a simulation without
//! hydrodynamic interactions would give (`v = mu0 F` exactly).
//!
//! ```sh
//! cargo run --release --example sedimentation
//! ```

use hibd::core::forces::ConstantForce;
use hibd::prelude::*;

fn main() {
    let n = 200;
    let phi = 0.05;
    let fg = Vec3::new(0.0, 0.0, -1.0); // gravity along -z
    let mu0 = 1.0 / (6.0 * std::f64::consts::PI);
    let v0 = mu0 * fg.norm(); // isolated sphere settling speed

    let mut rng = make_rng(11);
    let system = ParticleSystem::random_suspension(n, phi, &mut rng);
    let config = MatrixFreeConfig {
        kbt: 0.05, // weak thermal noise so settling dominates
        ..Default::default()
    };
    let dt = config.dt;
    let mut sim = MatrixFreeBd::new(system, config, 11).expect("setup");
    sim.add_force(RepulsiveHarmonic::default());
    sim.add_force(ConstantForce(fg));

    let z0: f64 = sim.system().unwrapped().iter().map(|p| p.z).sum::<f64>() / n as f64;
    let steps = 300;
    sim.run(steps).expect("run");
    let z1: f64 = sim.system().unwrapped().iter().map(|p| p.z).sum::<f64>() / n as f64;
    let v_mean = (z0 - z1) / (steps as f64 * dt);

    println!("sedimentation of {n} spheres at phi = {phi}");
    println!("isolated-sphere speed  v0        = {v0:.5}");
    println!("measured mean settling v         = {v_mean:.5}");
    println!("hindered settling ratio v/v0     = {:.3}", v_mean / v0);
    println!();
    println!("with periodic hydrodynamic interactions the ratio is < 1 and");
    println!("decreases with phi (backflow); without HI it would be exactly 1.");
}
