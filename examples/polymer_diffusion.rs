//! Diffusion of a bead-spring polymer chain with hydrodynamic interactions.
//!
//! A classic result of polymer physics: with hydrodynamic interactions the
//! center-of-mass diffusion of an N-bead chain scales like the Zimm model
//! (`D ~ N^{-nu}`, faster than Rouse's `D ~ 1/N`), because the beads drag
//! fluid along with them. This example builds chains of several lengths,
//! runs the matrix-free BD, and prints the measured center-of-mass D.
//!
//! ```sh
//! cargo run --release --example polymer_diffusion
//! ```

use hibd::core::forces::HarmonicBond;
use hibd::prelude::*;

/// Build one chain of `nbeads` beads (bond rest length 2a) in a dilute box.
fn chain_system(nbeads: usize, seed: u64) -> ParticleSystem {
    let _ = seed;
    let bond = 2.0;
    // Dilute: box much larger than the chain.
    let box_l = (nbeads as f64 * bond * 3.0).max(30.0);
    let mid = box_l / 2.0;
    // Slightly kinked initial line to avoid a perfectly singular geometry.
    let positions: Vec<Vec3> = (0..nbeads)
        .map(|i| {
            Vec3::new(
                mid + (i as f64 - nbeads as f64 / 2.0) * bond,
                mid + 0.3 * (i as f64).sin(),
                mid + 0.3 * (i as f64 * 1.7).cos(),
            )
        })
        .collect();
    ParticleSystem::new(positions, box_l, 1.0, 1.0)
}

fn com(points: &[Vec3]) -> Vec3 {
    let mut c = Vec3::ZERO;
    for p in points {
        c += *p;
    }
    c / points.len() as f64
}

fn main() {
    let mu0 = 1.0 / (6.0 * std::f64::consts::PI);
    println!("center-of-mass diffusion of bead-spring chains (Zimm regime)");
    println!("{:>7} {:>12} {:>12} {:>12}", "beads", "D_com/D0", "Rouse 1/N", "steps/s");

    for &nbeads in &[2usize, 4, 8, 16] {
        let system = chain_system(nbeads, 3);
        let config = MatrixFreeConfig { lambda_rpy: 8, ..Default::default() };
        let dt = config.dt;
        let mut sim = MatrixFreeBd::new(system, config, 3).expect("setup");
        sim.add_force(HarmonicBond::chain(0, nbeads as u32, 20.0, 2.0));
        sim.add_force(RepulsiveHarmonic::default());

        let steps = 400;
        let mut com_track: Vec<Vec3> = Vec::with_capacity(steps + 1);
        com_track.push(com(sim.system().unwrapped()));
        for _ in 0..steps {
            sim.step().expect("step");
            com_track.push(com(sim.system().unwrapped()));
        }
        // MSD of the COM over a quarter-trajectory lag.
        let lag = steps / 4;
        let mut msd = 0.0;
        let mut cnt = 0;
        for t in 0..(com_track.len() - lag) {
            msd += (com_track[t + lag] - com_track[t]).norm2();
            cnt += 1;
        }
        msd /= cnt as f64;
        let d_com = msd / (6.0 * lag as f64 * dt);
        let rate = sim.timings().steps as f64 / sim.timings().total();
        println!("{nbeads:>7} {:>12.4} {:>12.4} {:>12.1}", d_com / mu0, 1.0 / nbeads as f64, rate);
    }
    println!();
    println!("with HI, D_com/D0 decays slower than the free-draining (Rouse) 1/N");
    println!("column — the hydrodynamic coupling is what the RPY mobility adds.");
}
