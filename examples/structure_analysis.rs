//! Run a short simulation, write an XYZ trajectory, read it back, and
//! compute structure + transport observables — the full round trip a user
//! takes from simulation to analysis.
//!
//! ```sh
//! cargo run --release --example structure_analysis
//! ```

use hibd::core::analysis::RdfAccumulator;
use hibd::core::io::{Coordinates, XyzReader, XyzWriter};
use hibd::prelude::*;

fn main() {
    let n = 200;
    let phi = 0.3;
    let mut rng = make_rng(5);
    let system = ParticleSystem::random_suspension(n, phi, &mut rng);
    let config = MatrixFreeConfig::default();
    let mut sim = MatrixFreeBd::new(system, config, 5).expect("setup");
    sim.add_force(RepulsiveHarmonic::default());

    // Simulate, storing every 10th frame to an in-memory XYZ trajectory.
    let mut writer = XyzWriter::new(Vec::new(), Coordinates::Wrapped).with_element("Co");
    let mut rdf = RdfAccumulator::new(sim.system().box_l / 2.0 * 0.99, 30);
    for step in 1..=200 {
        sim.step().expect("step");
        if step % 10 == 0 {
            writer.write_frame(sim.system(), &format!("step={step}")).unwrap();
            rdf.record(sim.system());
        }
    }
    let bytes = writer.into_inner().unwrap();
    println!("trajectory: {} bytes, {} frames recorded", bytes.len(), rdf.frames());

    // Read the trajectory back (as an external analysis tool would).
    let frames = XyzReader::new(&bytes[..]).read_all().expect("parse trajectory");
    println!(
        "round trip: {} frames, {} particles, L = {:?}",
        frames.len(),
        frames[0].positions.len(),
        frames[0].box_l
    );

    // Suspension structure: g(r) must show the hard-sphere signature.
    println!("\n g(r) (phi = {phi}):");
    println!("{:>8} {:>8}", "r/a", "g");
    for (r, g) in rdf.normalized() {
        let bar = "#".repeat((g * 20.0).min(60.0) as usize);
        println!("{r:>8.2} {g:>8.3}  {bar}");
    }
    println!("\nexpect: g ~ 0 below contact (r < 2a), a peak just past contact,");
    println!("and g -> 1 at large r — the structure HI-BD must preserve.");
}
