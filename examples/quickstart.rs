//! Quickstart: simulate a small Brownian suspension with hydrodynamic
//! interactions and estimate its self-diffusion coefficient.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hibd::core::diffusion::DiffusionEstimator;
use hibd::prelude::*;

fn main() {
    // 300 spheres (radius a = 1) at volume fraction 0.2 in a periodic box.
    let mut rng = make_rng(7);
    let system = ParticleSystem::random_suspension(300, 0.2, &mut rng);
    println!(
        "suspension: n = {}, L = {:.2}, phi = {:.3}",
        system.len(),
        system.box_l,
        system.volume_fraction()
    );

    // Matrix-free BD: PME parameters are tuned automatically for the target
    // accuracy e_p ~ 1e-3 and the Krylov tolerance e_k = 1e-2 (the paper's
    // production settings).
    let config = MatrixFreeConfig { e_k: 1e-2, target_ep: 1e-3, ..Default::default() };
    let dt = config.dt;
    let mut sim = MatrixFreeBd::new(system, config, 7).expect("setup");
    sim.add_force(RepulsiveHarmonic::default());
    let pme = sim.pme_params().expect("periodic run has PME params");
    println!(
        "PME: K = {}, p = {}, r_max = {:.2}, alpha = {:.3}",
        pme.mesh_dim, pme.spline_order, pme.r_max, pme.alpha
    );

    // Equilibrate, then measure the mean-squared displacement.
    sim.run(50).expect("equilibration");
    let mut est = DiffusionEstimator::new(dt, 8);
    est.record(sim.system().unwrapped());
    for step in 1..=400 {
        sim.step().expect("step");
        est.record(sim.system().unwrapped());
        if step % 100 == 0 {
            println!("step {step}: {} Krylov iterations so far", sim.timings().krylov_iterations);
        }
    }

    let mu0 = 1.0 / (6.0 * std::f64::consts::PI); // isolated-sphere mobility
    let (d, err) = est.diffusion().expect("diffusion estimate");
    println!();
    println!("D / D0 = {:.3} +- {:.3}  (D0 = kBT mu0)", d / mu0, err / mu0);
    println!("crowding at phi = 0.2 should give D/D0 well below 1 (paper Fig. 3)");
    println!("time per BD step: {:.1} ms", sim.timings().per_step() * 1e3);
}
