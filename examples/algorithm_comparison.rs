//! Side-by-side run of both algorithms on the same suspension.
//!
//! Runs Algorithm 1 (dense Ewald + Cholesky) and Algorithm 2 (PME + block
//! Krylov) from the same initial configuration, then compares their
//! per-phase costs and checks that both produce statistically consistent
//! dynamics (comparable mean-squared displacement per step).
//!
//! ```sh
//! cargo run --release --example algorithm_comparison
//! ```

use hibd::core::ewald_bd::{EwaldBd, EwaldBdConfig};
use hibd::prelude::*;

fn msd_per_step(unwrapped: &[Vec3], initial: &[Vec3], steps: usize) -> f64 {
    unwrapped.iter().zip(initial).map(|(u, p)| (*u - *p).norm2()).sum::<f64>()
        / (unwrapped.len() * steps) as f64
}

fn main() {
    let n = 150;
    let phi = 0.15;
    let steps = 32;
    let mut rng = make_rng(21);
    let system = ParticleSystem::random_suspension(n, phi, &mut rng);
    let initial: Vec<Vec3> = system.unwrapped().to_vec();

    // Algorithm 1: conventional Ewald BD.
    let mut dense = EwaldBd::new(system.clone(), EwaldBdConfig::default(), 99);
    dense.add_force(RepulsiveHarmonic::default());
    dense.run(steps).expect("dense run");
    let t1 = *dense.timings();

    // Algorithm 2: matrix-free BD.
    let mut mf = MatrixFreeBd::new(system, MatrixFreeConfig::default(), 99).expect("setup");
    mf.add_force(RepulsiveHarmonic::default());
    mf.run(steps).expect("matrix-free run");
    let t2 = *mf.timings();

    println!("n = {n}, phi = {phi}, {steps} steps\n");
    println!("Algorithm 1 (dense Ewald + Cholesky):");
    println!("  assembly      {:>9.3} s", t1.assembly);
    println!("  cholesky      {:>9.3} s", t1.cholesky);
    println!("  displacements {:>9.3} s", t1.displacements);
    println!("  stepping      {:>9.3} s", t1.stepping);
    println!("  per step      {:>9.3} ms", t1.per_step() * 1e3);
    println!("  matrix memory {:>9.1} MiB", (6 * n * n * 9 * 8) as f64 / 1048576.0);
    println!();
    println!("Algorithm 2 (PME + block Krylov):");
    println!("  PME setup     {:>9.3} s", t2.setup);
    println!(
        "  displacements {:>9.3} s ({} Krylov iterations)",
        t2.displacements, t2.krylov_iterations
    );
    println!("  stepping      {:>9.3} s", t2.stepping);
    println!("  per step      {:>9.3} ms", t2.per_step() * 1e3);
    println!("  operator mem  {:>9.1} MiB", mf.operator_memory_bytes() as f64 / 1048576.0);
    println!();
    let m1 = msd_per_step(dense.system().unwrapped(), &initial, steps);
    let m2 = msd_per_step(mf.system().unwrapped(), &initial, steps);
    println!("MSD per step: dense {m1:.5}  matrix-free {m2:.5}  ratio {:.3}", m2 / m1);
    println!("(different random streams; the ratio should be ~1 statistically)");
}
