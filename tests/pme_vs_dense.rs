//! Integration: the PME operator against the dense Ewald mobility matrix,
//! across realistic suspension configurations and tuner settings.

use hibd::linalg::{DenseOp, LinearOperator};
use hibd::pme::{measure_ep, tune, PmeOperator};
use hibd::prelude::*;
use hibd::rpy::{dense_ewald_mobility, RpyEwald};

fn build(n: usize, phi: f64, seed: u64) -> ParticleSystem {
    let mut rng = make_rng(seed);
    ParticleSystem::random_suspension(n, phi, &mut rng)
}

#[test]
fn tuned_pme_meets_its_error_target_across_volume_fractions() {
    for (phi, seed) in [(0.1, 1u64), (0.3, 2), (0.45, 3)] {
        let n = 60;
        let sys = build(n, phi, seed);
        let cfg = tune(n, phi, 1.0, 1.0, 1e-3);
        let mut op = PmeOperator::new(sys.positions(), cfg.params).unwrap();
        let dense = dense_ewald_mobility(
            sys.positions(),
            &RpyEwald::new(1.0, 1.0, cfg.params.box_l, 0.45, 1e-9),
        );
        let ep = measure_ep(&mut op, &mut DenseOp::new(dense), 2, seed);
        assert!(ep < 1e-3, "phi={phi}: e_p = {ep:e}");
    }
}

#[test]
fn pme_accuracy_improves_with_tighter_target() {
    let n = 50;
    let phi = 0.2;
    let sys = build(n, phi, 9);
    let mut eps = Vec::new();
    for target in [3e-2, 1e-3, 1e-5] {
        let cfg = tune(n, phi, 1.0, 1.0, target);
        let mut op = PmeOperator::new(sys.positions(), cfg.params).unwrap();
        let dense = dense_ewald_mobility(
            sys.positions(),
            &RpyEwald::new(1.0, 1.0, cfg.params.box_l, 0.45, 1e-10),
        );
        let ep = measure_ep(&mut op, &mut DenseOp::new(dense), 2, 5);
        assert!(ep < target, "target {target:e}: measured {ep:e}");
        eps.push(ep);
    }
    assert!(eps[2] < eps[0], "tightest target must beat loosest: {eps:?}");
}

#[test]
fn pme_operator_agrees_with_dense_for_overlapping_particles() {
    // Overlap correction must survive the full operator path.
    let phi = 0.2;
    let n = 40;
    let mut sys = build(n, phi, 4);
    // Force an overlapping pair.
    let mut pos = sys.positions().to_vec();
    pos[1] = pos[0] + hibd::mathx::Vec3::new(1.1, 0.0, 0.0);
    sys = ParticleSystem::new(pos, sys.box_l, 1.0, 1.0);

    let cfg = tune(n, phi, 1.0, 1.0, 1e-3);
    let mut op = PmeOperator::new(sys.positions(), cfg.params).unwrap();
    let dense = dense_ewald_mobility(
        sys.positions(),
        &RpyEwald::new(1.0, 1.0, cfg.params.box_l, 0.45, 1e-9),
    );
    let ep = measure_ep(&mut op, &mut DenseOp::new(dense), 2, 6);
    assert!(ep < 1e-3, "with overlaps: e_p = {ep:e}");
}

#[test]
fn pme_operator_is_positive_definite_in_practice() {
    // Rayleigh quotients of random vectors must be positive (the property
    // Lanczos depends on).
    let n = 80;
    let sys = build(n, 0.25, 8);
    let cfg = tune(n, 0.25, 1.0, 1.0, 1e-3);
    let mut op = PmeOperator::new(sys.positions(), cfg.params).unwrap();
    let mut u = vec![0.0; 3 * n];
    let mut state = 12345u64;
    for _ in 0..5 {
        let f: Vec<f64> = (0..3 * n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        op.apply(&f, &mut u);
        let q: f64 = f.iter().zip(&u).map(|(a, b)| a * b).sum();
        assert!(q > 0.0, "Rayleigh quotient {q}");
    }
}
