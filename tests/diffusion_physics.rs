//! Integration: physical sanity of the simulated dynamics.

use hibd::core::diffusion::DiffusionEstimator;
use hibd::prelude::*;

const MU0: f64 = 1.0 / (6.0 * std::f64::consts::PI);

#[test]
fn dilute_suspension_diffuses_near_the_isolated_sphere_value() {
    // At phi -> 0 the short-time self-diffusion approaches D0 = kBT mu0
    // (less the O(phi) and periodic finite-size corrections).
    let n = 40;
    let phi = 0.03; // dilute but not so dilute the box (hence mesh) explodes
    let mut rng = make_rng(41);
    let sys = ParticleSystem::random_suspension(n, phi, &mut rng);
    let cfg = MatrixFreeConfig { lambda_rpy: 8, target_ep: 3e-3, ..Default::default() };
    let dt = cfg.dt;
    let mut bd = MatrixFreeBd::new(sys, cfg, 41).unwrap();
    bd.add_force(RepulsiveHarmonic::default());

    let mut est = DiffusionEstimator::new(dt, 6);
    est.record(bd.system().unwrapped());
    for _ in 0..80 {
        bd.step().unwrap();
        est.record(bd.system().unwrapped());
    }
    let (d, _err) = est.diffusion().unwrap();
    let ratio = d / MU0;
    // Periodic self-mobility correction is 1 - 2.837 a/L; L ~ 27.6 here.
    assert!((0.75..1.15).contains(&ratio), "dilute D/D0 = {ratio}, expected near 1");
}

#[test]
fn crowding_slows_diffusion() {
    // The headline physics of Figure 3: D decreases with volume fraction.
    let n = 40;
    let measure = |phi: f64| -> f64 {
        let mut rng = make_rng(43);
        let sys = ParticleSystem::random_suspension(n, phi, &mut rng);
        let cfg = MatrixFreeConfig { lambda_rpy: 8, target_ep: 3e-3, ..Default::default() };
        let dt = cfg.dt;
        let mut bd = MatrixFreeBd::new(sys, cfg, 43).unwrap();
        bd.add_force(RepulsiveHarmonic::default());
        bd.run(24).unwrap();
        let mut est = DiffusionEstimator::new(dt, 6);
        est.record(bd.system().unwrapped());
        for _ in 0..90 {
            bd.step().unwrap();
            est.record(bd.system().unwrapped());
        }
        est.diffusion().unwrap().0
    };
    let d_dilute = measure(0.05);
    let d_crowded = measure(0.40);
    assert!(d_crowded < d_dilute, "crowded D {d_crowded} must be below dilute D {d_dilute}");
    // And the magnitude of the drop should be substantial (paper: tens of %).
    assert!(d_crowded / d_dilute < 0.95, "ratio {}", d_crowded / d_dilute);
}

#[test]
fn center_of_mass_is_conserved_without_external_forces() {
    // Internal forces sum to zero and the k = 0 mode is excluded from the
    // mobility, so the deterministic drift cannot move the center of mass;
    // Brownian displacements move it only diffusively (collective mode).
    let n = 30;
    let mut rng = make_rng(47);
    let sys = ParticleSystem::random_suspension(n, 0.2, &mut rng);
    let cfg = MatrixFreeConfig { kbt: 0.0, ..Default::default() };
    let mut bd = MatrixFreeBd::new(sys, cfg, 47).unwrap();
    bd.add_force(RepulsiveHarmonic::default());
    let com_before: Vec3 =
        bd.system().unwrapped().iter().fold(Vec3::ZERO, |acc, p| acc + *p) / n as f64;
    bd.run(10).unwrap();
    let com_after: Vec3 =
        bd.system().unwrapped().iter().fold(Vec3::ZERO, |acc, p| acc + *p) / n as f64;
    let drift = (com_after - com_before).norm();
    assert!(drift < 1e-6, "COM drift {drift}");
}
