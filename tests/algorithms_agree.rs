//! Integration: Algorithm 1 (dense Ewald + Cholesky) and Algorithm 2
//! (PME + block Krylov) must produce the same physics.

use hibd::core::ewald_bd::{EwaldBd, EwaldBdConfig};
use hibd::core::forces::ConstantForce;
use hibd::prelude::*;

fn build(n: usize, phi: f64, seed: u64) -> ParticleSystem {
    let mut rng = make_rng(seed);
    ParticleSystem::random_suspension(n, phi, &mut rng)
}

#[test]
fn deterministic_drift_matches_between_algorithms() {
    // At kBT = 0 the propagation is deterministic: r += M f dt. Both
    // algorithms apply the same M (up to Ewald/PME truncation), so short
    // trajectories must coincide to within the PME error times trajectory
    // length.
    let n = 40;
    let phi = 0.15;
    let steps = 5;

    let sys = build(n, phi, 77);

    let mut dense = EwaldBd::new(
        sys.clone(),
        EwaldBdConfig { kbt: 0.0, ewald_tol: 1e-8, ..Default::default() },
        1,
    );
    dense.add_force(RepulsiveHarmonic::default());
    dense.add_force(ConstantForce(Vec3::new(0.3, -0.1, 0.2)));
    dense.run(steps).unwrap();

    let mut mf = MatrixFreeBd::new(
        sys,
        MatrixFreeConfig { kbt: 0.0, target_ep: 1e-4, ..Default::default() },
        2,
    )
    .unwrap();
    mf.add_force(RepulsiveHarmonic::default());
    mf.add_force(ConstantForce(Vec3::new(0.3, -0.1, 0.2)));
    mf.run(steps).unwrap();

    let mut max_dev = 0.0f64;
    for (a, b) in dense.system().unwrapped().iter().zip(mf.system().unwrapped()) {
        max_dev = max_dev.max((*a - *b).norm());
    }
    assert!(max_dev < 3e-3, "trajectory deviation {max_dev}");
}

#[test]
fn both_algorithms_sample_comparable_mobility_scale() {
    // With thermal noise the trajectories differ, but the RMS displacement
    // per step is set by the same mobility: ratios should be ~1.
    let n = 60;
    let phi = 0.2;
    let steps = 16;
    let sys = build(n, phi, 88);
    let initial: Vec<Vec3> = sys.unwrapped().to_vec();

    let mut dense = EwaldBd::new(sys.clone(), EwaldBdConfig::default(), 10);
    dense.add_force(RepulsiveHarmonic::default());
    dense.run(steps).unwrap();
    let msd_dense: f64 = dense
        .system()
        .unwrapped()
        .iter()
        .zip(&initial)
        .map(|(u, p)| (*u - *p).norm2())
        .sum::<f64>()
        / n as f64;

    let mut mf = MatrixFreeBd::new(sys, MatrixFreeConfig::default(), 20).unwrap();
    mf.add_force(RepulsiveHarmonic::default());
    mf.run(steps).unwrap();
    let msd_mf: f64 =
        mf.system().unwrapped().iter().zip(&initial).map(|(u, p)| (*u - *p).norm2()).sum::<f64>()
            / n as f64;

    let ratio = msd_mf / msd_dense;
    assert!(
        (0.6..1.7).contains(&ratio),
        "MSD ratio {ratio} (dense {msd_dense}, matrix-free {msd_mf})"
    );
}

#[test]
fn repulsion_resolves_initial_overlaps_in_both_algorithms() {
    // Start from a lattice with mild jitter at high phi; the contact force
    // must keep the system from collapsing in either integrator.
    let n = 64;
    let phi = 0.35;
    let sys = build(n, phi, 99);

    let mut mf = MatrixFreeBd::new(sys.clone(), MatrixFreeConfig::default(), 30).unwrap();
    mf.add_force(RepulsiveHarmonic::default());
    mf.run(20).unwrap();
    let min_mf = mf.system().min_separation().unwrap();
    assert!(min_mf > 1.5, "matrix-free min separation {min_mf}");

    let mut dense = EwaldBd::new(sys, EwaldBdConfig::default(), 30);
    dense.add_force(RepulsiveHarmonic::default());
    dense.run(20).unwrap();
    let min_dense = dense.system().min_separation().unwrap();
    assert!(min_dense > 1.5, "dense min separation {min_dense}");
}
