//! # hibd — Hydrodynamic-Interaction Brownian Dynamics
//!
//! A matrix-free Brownian dynamics library with long-range hydrodynamic
//! interactions, reproducing Liu & Chow, *"Large-Scale Hydrodynamic Brownian
//! Simulations on Multicore and Manycore Architectures"*, IPDPS 2014.
//!
//! The conventional BD algorithm stores the dense `3n x 3n` Rotne–Prager–
//! Yamakawa mobility matrix and Cholesky-factorizes it to sample Brownian
//! displacements — `O(n^2)` memory and `O(n^3)` time. This crate implements
//! the paper's matrix-free alternative: the mobility is applied through a
//! particle-mesh Ewald (PME) operator (`O(n log n)`), and displacements are
//! drawn with a block Krylov (Lanczos) method that needs only `M*v` products.
//!
//! ## Quick start
//!
//! ```
//! use hibd::prelude::*;
//!
//! // A small periodic suspension at volume fraction 0.1.
//! let mut rng = make_rng(42);
//! let system = ParticleSystem::random_suspension(100, 0.1, &mut rng);
//! let config = MatrixFreeConfig::default();
//! let mut sim = MatrixFreeBd::new(system, config, 42).unwrap();
//! sim.add_force(RepulsiveHarmonic::default());
//! sim.run(10).unwrap();
//! assert_eq!(sim.system().len(), 100);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`mathx`] | `erf`/`erfc`, Gaussian sampling, `Vec3`, statistics |
//! | [`fft`] | 3D real-to-complex FFT (mixed radix, from scratch) |
//! | [`sparse`] | CSR / fixed-nnz CSR / 3x3-block BCSR sparse kernels |
//! | [`linalg`] | dense matrix, Cholesky, QR, symmetric eigensolvers |
//! | [`cells`] | periodic and open-boundary Verlet cell lists |
//! | [`rpy`] | RPY tensor and its Beenakker Ewald summation |
//! | [`pme`] | particle-mesh Ewald operator for the RPY tensor |
//! | [`krylov`] | (block) Lanczos computation of `M^{1/2} z` |
//! | [`pse`] | positively-split Ewald Brownian displacement sampler |
//! | [`treecode`] | hierarchical free-space RPY operator (open boundaries) |
//! | [`core`] | BD drivers, forces, diffusion analysis, hybrid execution |
//! | [`engine`] | resident plan cache + lockstep multi-replica ensembles |

pub use hibd_cells as cells;
pub use hibd_core as core;
pub use hibd_engine as engine;
pub use hibd_fft as fft;
pub use hibd_krylov as krylov;
pub use hibd_linalg as linalg;
pub use hibd_mathx as mathx;
pub use hibd_pme as pme;
pub use hibd_pse as pse;
pub use hibd_rpy as rpy;
pub use hibd_sparse as sparse;
pub use hibd_telemetry as telemetry;
pub use hibd_treecode as treecode;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use hibd_core::diffusion::DiffusionEstimator;
    pub use hibd_core::ewald_bd::{EwaldBd, EwaldBdConfig};
    pub use hibd_core::forces::{ConstantForce, Force, HarmonicBond, RepulsiveHarmonic};
    pub use hibd_core::mf_bd::{MatrixFreeBd, MatrixFreeConfig};
    pub use hibd_core::system::ParticleSystem;
    pub use hibd_mathx::Vec3;

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic RNG helper used in examples and docs.
    pub fn make_rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }
}
